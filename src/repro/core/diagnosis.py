"""Cause attribution at the sensing → controller boundary.

The paper separates corruption from congestion by their signatures (§3:
corruption shows FCS errors and does *not* track utilization; congestion
drops track utilization and carry no FCS signature) and maps symptoms to
root causes (§4).  Historically our sensing pipelines handed the
controller a bare loss rate, so it could not ask *why* a link is lossy
before disabling it.  This module is the refactored contract: pipelines
emit structured :class:`LinkDiagnosis` records, and the controller side
decides per cause whether mitigation is warranted.

Everything here is pure arithmetic over already-collected samples — no
RNG, no wall clock — so diagnosis-aware runs stay deterministic and the
compatibility shim (classifying with an empty congestion channel) is
byte-identical to the pre-diagnosis pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.topology.elements import Direction, LinkId

#: The cause taxonomy.  ``corruption`` and ``congestion`` are the §3
#: dichotomy; ``both`` is the adversarial overlap the discriminator must
#: untangle; ``miswired`` is the A3-style case where the *map* is wrong
#: (counters are real but attributed to the wrong link); ``unknown``
#: means the evidence supports no verdict — treated as corruption for
#: mitigation (fail-safe: an undiagnosed lossy link is still lossy).
CAUSE_CORRUPTION = "corruption"
CAUSE_CONGESTION = "congestion"
CAUSE_BOTH = "both"
CAUSE_MISWIRED = "miswired"
CAUSE_UNKNOWN = "unknown"

CAUSES: Tuple[str, ...] = (
    CAUSE_CORRUPTION,
    CAUSE_CONGESTION,
    CAUSE_BOTH,
    CAUSE_MISWIRED,
    CAUSE_UNKNOWN,
)

#: Causes for which mitigation (disable / ticket) is on the table.
#: Congestion-only links are *never* actionable — disabling a congested
#: link shifts its traffic and makes the congestion worse — and miswired
#: links must not be disabled by counter evidence because the counters
#: belong to some other link.
ACTIONABLE_CAUSES = frozenset(
    {CAUSE_CORRUPTION, CAUSE_BOTH, CAUSE_UNKNOWN}
)


@dataclass(frozen=True)
class LinkDiagnosis:
    """One structured verdict about one link direction at one poll.

    Attributes:
        link_id: The (possibly map-corrupted) link the sample is
            attributed to.
        direction: Which direction of the link.
        cause: One of :data:`CAUSES`.
        confidence: Classifier confidence in ``[0, 1]``; evidence-backed
            verdicts score higher than threshold-only ones.
        corruption_rate: Sanitized FCS-error rate at diagnosis time.
        congestion_rate: Sanitized queue-drop rate at diagnosis time.
        utilization: Link utilization at diagnosis time (0 when the
            pipeline has no utilization channel).
        evidence: Human-auditable clauses that produced the verdict,
            in evaluation order.
        time_s: Simulation time of the sample.
    """

    link_id: LinkId
    direction: Direction
    cause: str
    confidence: float
    corruption_rate: float
    congestion_rate: float = 0.0
    utilization: float = 0.0
    evidence: Tuple[str, ...] = ()
    time_s: float = 0.0

    def actionable(self) -> bool:
        """May the controller mitigate (disable/ticket) on this verdict?"""
        return self.cause in ACTIONABLE_CAUSES

    def row(self) -> Dict[str, object]:
        """Flat JSON-safe projection for audit / event streams."""
        return {
            "link": list(self.link_id),
            "direction": self.direction.value,
            "cause": self.cause,
            "confidence": round(self.confidence, 6),
            "corruption_rate": self.corruption_rate,
            "congestion_rate": self.congestion_rate,
            "utilization": self.utilization,
            "evidence": list(self.evidence),
            "time_s": self.time_s,
        }


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation; 0.0 when degenerate (short or flat series)."""
    n = min(len(xs), len(ys))
    if n < 3:
        return 0.0
    xs, ys = xs[-n:], ys[-n:]
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0.0 or var_y <= 0.0:
        return 0.0
    return cov / (var_x * var_y) ** 0.5


class CauseClassifier:
    """Threshold + correlation discriminator for the §3 dichotomy.

    Rules, in order:

    1. a standing miswire flag (from the active-probe cross-check)
       dominates every counter argument — the counters are someone
       else's;
    2. FCS errors ≥ threshold and drops ≥ threshold → ``both``;
    3. FCS errors alone → ``corruption``;
    4. drops alone → ``congestion``, with confidence boosted by a
       positive utilization↔drop correlation over the recent history
       (the §3 signature) and damped when the correlation is absent;
    5. neither channel above threshold → ``unknown``.

    The classifier is stateless; history series are passed in so the
    caller controls the window (and so this stays trivially picklable).
    """

    def __init__(
        self,
        corruption_threshold: float = 1e-7,
        congestion_threshold: float = 1e-7,
        correlation_window: int = 16,
    ):
        self.corruption_threshold = corruption_threshold
        self.congestion_threshold = congestion_threshold
        self.correlation_window = correlation_window

    def classify(
        self,
        link_id: LinkId,
        direction: Direction,
        corruption_rate: float,
        congestion_rate: float = 0.0,
        utilization: float = 0.0,
        time_s: float = 0.0,
        utilization_history: Optional[Sequence[float]] = None,
        congestion_history: Optional[Sequence[float]] = None,
        miswire_suspected: bool = False,
    ) -> LinkDiagnosis:
        evidence: List[str] = []
        corr = corruption_rate >= self.corruption_threshold
        cong = congestion_rate >= self.congestion_threshold
        if miswire_suspected:
            evidence.append("probe-crosscheck: counter/probe disagreement")
            return LinkDiagnosis(
                link_id, direction, CAUSE_MISWIRED, 0.9,
                corruption_rate, congestion_rate, utilization,
                tuple(evidence), time_s,
            )
        correlation = 0.0
        if cong and utilization_history and congestion_history:
            window = self.correlation_window
            correlation = pearson(
                list(utilization_history)[-window:],
                list(congestion_history)[-window:],
            )
        if corr and cong:
            evidence.append(
                f"fcs-errors {corruption_rate:.3g} and "
                f"drops {congestion_rate:.3g} both over threshold"
            )
            confidence = 0.6 + 0.3 * max(0.0, correlation)
            cause = CAUSE_BOTH
        elif corr:
            evidence.append(
                f"fcs-errors {corruption_rate:.3g} over threshold, "
                "no drop signature"
            )
            cause = CAUSE_CORRUPTION
            confidence = 0.8
        elif cong:
            evidence.append(
                f"drops {congestion_rate:.3g} over threshold, no FCS errors"
            )
            if correlation > 0.0:
                evidence.append(
                    f"drops track utilization (pearson {correlation:+.2f})"
                )
            cause = CAUSE_CONGESTION
            confidence = 0.5 + 0.4 * max(0.0, correlation)
        else:
            evidence.append("no channel over threshold")
            cause = CAUSE_UNKNOWN
            confidence = 0.0
        return LinkDiagnosis(
            link_id, direction, cause, min(1.0, confidence),
            corruption_rate, congestion_rate, utilization,
            tuple(evidence), time_s,
        )


@dataclass
class DiagnosisStats:
    """Confusion-matrix accounting of diagnoses vs ground truth.

    ``note(truth, diagnosed)`` is called once per (link, cause-episode)
    by the sensing pipeline; per-cause precision/recall plus the two
    operator-facing hazard rates (false disables of clean-or-congested
    links, corrupting links never diagnosed) come out of :meth:`row`.
    Plain counters only — picklable and mergeable across shards.
    """

    #: ``confusion[truth][diagnosed]`` → count.
    confusion: Dict[str, Dict[str, int]] = field(default_factory=dict)
    diagnoses: int = 0
    congestion_mitigations: int = 0
    missed_corrupting: int = 0

    def note(self, truth: str, diagnosed: str) -> None:
        if truth not in CAUSES or diagnosed not in CAUSES:
            raise ValueError(
                f"unknown cause {truth!r}/{diagnosed!r}; "
                f"choose from {list(CAUSES)}"
            )
        by_diag = self.confusion.setdefault(truth, {})
        by_diag[diagnosed] = by_diag.get(diagnosed, 0) + 1
        self.diagnoses += 1

    def _diagnosed_count(self, cause: str) -> int:
        return sum(
            by_diag.get(cause, 0) for by_diag in self.confusion.values()
        )

    def _truth_count(self, cause: str) -> int:
        return sum(self.confusion.get(cause, {}).values())

    def precision(self, cause: str) -> Optional[float]:
        """Of everything diagnosed ``cause``, how much truly was?"""
        diagnosed = self._diagnosed_count(cause)
        if diagnosed == 0:
            return None
        return self.confusion.get(cause, {}).get(cause, 0) / diagnosed

    def recall(self, cause: str) -> Optional[float]:
        """Of everything truly ``cause``, how much was diagnosed so?"""
        truth = self._truth_count(cause)
        if truth == 0:
            return None
        return self.confusion.get(cause, {}).get(cause, 0) / truth

    def merge(self, other: "DiagnosisStats") -> None:
        for truth, by_diag in other.confusion.items():
            mine = self.confusion.setdefault(truth, {})
            for diagnosed, count in by_diag.items():
                mine[diagnosed] = mine.get(diagnosed, 0) + count
        self.diagnoses += other.diagnoses
        self.congestion_mitigations += other.congestion_mitigations
        self.missed_corrupting += other.missed_corrupting

    def row(self) -> Dict[str, object]:
        """Flat JSON-safe block for health scorecards and sweep rows."""
        out: Dict[str, object] = {
            "diagnoses": self.diagnoses,
            "congestion_mitigations": self.congestion_mitigations,
            "missed_corrupting": self.missed_corrupting,
        }
        for cause in CAUSES:
            precision = self.precision(cause)
            recall = self.recall(cause)
            if precision is None and recall is None:
                continue
            out[f"precision_{cause}"] = (
                None if precision is None else round(precision, 6)
            )
            out[f"recall_{cause}"] = (
                None if recall is None else round(recall, 6)
            )
        return out
