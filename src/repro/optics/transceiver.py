"""Transceiver state: laser aging, seating, and signal decoding.

§4's root causes act through the transceivers at the two ends of a link:
lasers decay (root cause 3), modules can be bad or loosely seated (root
cause 4), and contamination/bends reduce the receive power the far module
must decode (root causes 1–2).  This model converts received power into a
corruption probability via a stylized decoder margin curve, which gives the
fault models a physically-motivated knob.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.optics.power import TransceiverTech


@dataclass
class Transceiver:
    """One optical module on one end of a link.

    Attributes:
        tech: Transceiver technology (sets nominal power and thresholds).
        tx_degradation_db: Loss of launch power due to laser aging.
        seated: Whether the module is firmly plugged in.
        defective: Whether the module's electronics are bad (root cause 4):
            it corrupts regardless of optical power levels.
        recently_reseated: Repair-history flag used by Algorithm 1.
    """

    tech: TransceiverTech
    tx_degradation_db: float = 0.0
    seated: bool = True
    defective: bool = False
    recently_reseated: bool = False

    def tx_power_dbm(self) -> float:
        """Actual launch power after aging degradation."""
        return self.tech.nominal_tx_dbm - self.tx_degradation_db

    def age_laser(self, additional_db: float) -> None:
        """Apply further laser decay (root cause 3)."""
        if additional_db < 0:
            raise ValueError("laser decay cannot be negative")
        self.tx_degradation_db += additional_db

    def reseat(self) -> None:
        """Re-seat the module; fixes loose seating but not bad electronics."""
        self.seated = True
        self.recently_reseated = True

    def replace(self) -> None:
        """Swap in a fresh module."""
        self.tx_degradation_db = 0.0
        self.seated = True
        self.defective = False
        self.recently_reseated = False


def decode_corruption_rate(
    rx_power_dbm: float,
    tech: TransceiverTech,
    defective_receiver: bool = False,
    loose_seating: bool = False,
) -> float:
    """Corruption loss rate as a function of received optical power.

    Below the sensitivity threshold, the decoder's bit-error rate rises
    steeply; we model the packet corruption rate as a logistic ramp in the
    *margin* (dB above threshold):

    - margin >= 3 dB: effectively error-free (1e-12 floor);
    - margin around 0: rates in the 1e-8 .. 1e-4 band;
    - margin <= -3 dB: catastrophic (approaching 1e-1).

    Defective or loosely seated modules corrupt at a high rate regardless of
    power (§4, root cause 4: "optical TxPower and RxPower on both sides of
    the link are most likely high, but the link still corrupts packets").
    """
    if defective_receiver:
        return 1e-3
    if loose_seating:
        return 3e-4
    margin_db = rx_power_dbm - tech.thresholds.rx_min_dbm
    # Logistic ramp across ~6 dB centered slightly below threshold.
    midpoint, steepness = -1.0, 1.6
    level = 1.0 / (1.0 + math.exp(steepness * (margin_db - midpoint)))
    rate = 1e-12 + 10 ** (-12 + 10.5 * level)
    return min(rate, 0.3)


def required_margin_for_rate(rate: float) -> float:
    """Invert :func:`decode_corruption_rate`: margin (dB) yielding ``rate``.

    Fault models use this to choose an optical loss consistent with a target
    corruption rate, so generated power levels and loss rates always agree
    with the decoder curve.

    Args:
        rate: Target corruption loss rate, in (1e-12, 0.3).

    Returns:
        The Rx margin above the sensitivity threshold, in dB (negative when
        the power must fall below the threshold).
    """
    floor = 1e-12
    rate = min(max(rate, 2e-12), 0.29)
    level = (math.log10(rate - floor) + 12.0) / 10.5
    level = min(max(level, 1e-9), 1 - 1e-9)
    midpoint, steepness = -1.0, 1.6
    return midpoint + math.log(1.0 / level - 1.0) / steepness


@dataclass
class LinkOptics:
    """The optical assembly of one link: two transceivers plus fiber loss.

    Attributes:
        tech: Shared technology of both ends.
        side_a: Transceiver at the lower switch.
        side_b: Transceiver at the upper switch.
        fiber_loss_ab_db: One-way loss from A's laser to B's receiver.
        fiber_loss_ba_db: One-way loss from B's laser to A's receiver.
            Fibers are unidirectional (§4), so contamination can raise loss
            in one direction only — the source of corruption asymmetry.
    """

    tech: TransceiverTech
    side_a: Transceiver = None  # type: ignore[assignment]
    side_b: Transceiver = None  # type: ignore[assignment]
    fiber_loss_ab_db: float = field(default=0.0)
    fiber_loss_ba_db: float = field(default=0.0)

    def __post_init__(self):
        if self.side_a is None:
            self.side_a = Transceiver(self.tech)
        if self.side_b is None:
            self.side_b = Transceiver(self.tech)
        if not self.fiber_loss_ab_db:
            self.fiber_loss_ab_db = self.tech.fiber_loss_db
        if not self.fiber_loss_ba_db:
            self.fiber_loss_ba_db = self.tech.fiber_loss_db

    def rx_power_at_b(self) -> float:
        """Power B receives: A's launch power minus the A→B fiber loss."""
        return self.side_a.tx_power_dbm() - self.fiber_loss_ab_db

    def rx_power_at_a(self) -> float:
        """Power A receives: B's launch power minus the B→A fiber loss."""
        return self.side_b.tx_power_dbm() - self.fiber_loss_ba_db

    def corruption_toward_b(self) -> float:
        """Loss rate of the A→B direction (decoded at B)."""
        return decode_corruption_rate(
            self.rx_power_at_b(),
            self.tech,
            defective_receiver=self.side_b.defective,
            loose_seating=not self.side_b.seated,
        )

    def corruption_toward_a(self) -> float:
        """Loss rate of the B→A direction (decoded at A)."""
        return decode_corruption_rate(
            self.rx_power_at_a(),
            self.tech,
            defective_receiver=self.side_a.defective,
            loose_seating=not self.side_a.seated,
        )
