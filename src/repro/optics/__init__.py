"""Optical-layer substrate: power math, transceiver technologies, decoding.

§4: "In modern DCNs, all inter-switch links tend to be optical."  The fault
models (:mod:`repro.faults`) and the recommendation engine
(:mod:`repro.core.recommendation`) both speak in terms of the Tx/RxPower
levels this package defines.
"""

from repro.optics.power import (
    DEPLOYED_SINGLE_RX_THRESHOLD_DBM,
    DEPLOYED_SINGLE_TX_THRESHOLD_DBM,
    TECH_10G_SR,
    TECH_40G_LR4,
    TECH_100G_CWDM4,
    TECHNOLOGIES,
    PowerThresholds,
    TransceiverTech,
    attenuate,
    dbm_to_mw,
    mw_to_dbm,
)
from repro.optics.transceiver import (
    LinkOptics,
    Transceiver,
    decode_corruption_rate,
)

__all__ = [
    "DEPLOYED_SINGLE_RX_THRESHOLD_DBM",
    "DEPLOYED_SINGLE_TX_THRESHOLD_DBM",
    "LinkOptics",
    "PowerThresholds",
    "TECH_100G_CWDM4",
    "TECH_10G_SR",
    "TECH_40G_LR4",
    "TECHNOLOGIES",
    "Transceiver",
    "TransceiverTech",
    "attenuate",
    "dbm_to_mw",
    "decode_corruption_rate",
    "mw_to_dbm",
]
