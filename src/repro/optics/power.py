"""Optical power arithmetic and thresholds.

Transceivers report transmit power (TxPower) and receive power (RxPower) in
dBm.  §4 classifies root causes by whether each side's power is High or Low
relative to technology-specific thresholds ("determined by the transceiver
technology and loss budget of links"); §5.2 uses ``PowerThreshRx`` and
``PowerThreshTx`` in Algorithm 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def dbm_to_mw(dbm: float) -> float:
    """Convert dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert milliwatts to dBm.

    Raises:
        ValueError: If ``mw`` is not positive.
    """
    if mw <= 0:
        raise ValueError(f"power must be positive, got {mw} mW")
    return 10.0 * math.log10(mw)


def attenuate(dbm: float, loss_db: float) -> float:
    """Apply ``loss_db`` of attenuation to a dBm power level."""
    return dbm - loss_db


@dataclass(frozen=True)
class PowerThresholds:
    """Acceptable minimum Tx/Rx power for one transceiver technology.

    Attributes:
        rx_min_dbm: ``PowerThreshRx`` — receive power below this is "Low".
        tx_min_dbm: ``PowerThreshTx`` — transmit power below this is "Low".
    """

    rx_min_dbm: float
    tx_min_dbm: float

    def rx_is_low(self, rx_dbm: float) -> bool:
        return rx_dbm < self.rx_min_dbm

    def tx_is_low(self, tx_dbm: float) -> bool:
        return tx_dbm < self.tx_min_dbm


@dataclass(frozen=True)
class TransceiverTech:
    """An optical transceiver technology and its link budget.

    Attributes:
        name: Technology label (e.g. ``"40G-LR4"``).
        nominal_tx_dbm: Healthy laser launch power.
        fiber_loss_db: Typical end-to-end loss on a healthy link.
        thresholds: Minimum acceptable power levels.
    """

    name: str
    nominal_tx_dbm: float
    fiber_loss_db: float
    thresholds: PowerThresholds

    def healthy_rx_dbm(self) -> float:
        """Expected RxPower on a healthy link."""
        return attenuate(self.nominal_tx_dbm, self.fiber_loss_db)


#: Representative technologies used by the fault and telemetry models.  The
#: numbers follow common SR/LR datasheets; what matters to the algorithms is
#: only High/Low relative to the thresholds.
TECH_10G_SR = TransceiverTech(
    name="10G-SR",
    nominal_tx_dbm=-2.0,
    fiber_loss_db=2.0,
    thresholds=PowerThresholds(rx_min_dbm=-9.9, tx_min_dbm=-7.3),
)

TECH_40G_LR4 = TransceiverTech(
    name="40G-LR4",
    nominal_tx_dbm=1.0,
    fiber_loss_db=4.0,
    thresholds=PowerThresholds(rx_min_dbm=-13.6, tx_min_dbm=-7.0),
)

TECH_100G_CWDM4 = TransceiverTech(
    name="100G-CWDM4",
    nominal_tx_dbm=0.0,
    fiber_loss_db=5.0,
    thresholds=PowerThresholds(rx_min_dbm=-10.0, tx_min_dbm=-6.5),
)

TECHNOLOGIES = {
    tech.name: tech for tech in (TECH_10G_SR, TECH_40G_LR4, TECH_100G_CWDM4)
}

#: The deployed recommendation engine (§7.2) "uses a single RxPower
#: threshold rather than customizing it to the links' optical technology".
DEPLOYED_SINGLE_RX_THRESHOLD_DBM = -11.0
DEPLOYED_SINGLE_TX_THRESHOLD_DBM = -7.0
