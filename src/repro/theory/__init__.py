"""Theory: the Appendix-A NP-completeness machinery.

- :mod:`repro.theory.sat` — 3-SAT instances + DPLL solver;
- :mod:`repro.theory.reduction` — the Lemma-A.1 gadget (3-SAT →
  link-disabling on a fat-tree pod) with both directions of the
  equivalence executable.
"""

from repro.theory.reduction import (
    ReductionGadget,
    assignment_from_disable_set,
    build_gadget,
    disable_set_from_assignment,
    max_disable_size_bruteforce,
    tor_connectivity_ok,
)
from repro.theory.sat import (
    Clause,
    Literal,
    ThreeSatInstance,
    dpll_solve,
    is_satisfiable,
    random_instance,
    unsatisfiable_instance,
)

__all__ = [
    "Clause",
    "Literal",
    "ReductionGadget",
    "ThreeSatInstance",
    "assignment_from_disable_set",
    "build_gadget",
    "disable_set_from_assignment",
    "dpll_solve",
    "is_satisfiable",
    "max_disable_size_bruteforce",
    "random_instance",
    "tor_connectivity_ok",
    "unsatisfiable_instance",
]
