"""The Appendix-A reduction: 3-SAT → link disabling on a fat-tree pod.

Construction (Lemma A.1, Figure 21), for an instance with ``k`` clauses
``C1..Ck`` and ``r`` variables ``x1..xr`` (``k >= r``):

- ToR switches: ``C1..Ck`` (clause gadgets) and ``H1..Hk`` (helpers);
- Agg switches: ``X1, ¬X1, ..., Xr, ¬Xr`` (one per literal);
- enabled ToR→Agg links: each ``Ci`` connects to the aggs of its three
  literals; ``Hj`` (j ≤ r) connects to ``Xj`` and ``¬Xj``; ``Hj`` (j > r)
  connects to ``X1`` and ``¬X1``;
- Agg→spine links ``L``: one per literal agg, **all corrupting with equal
  rate**.

Every ToR needs a valley-free path to the spine, so each clause needs at
least one of its literal aggs to keep its spine link, and each helper
forces at least one of every ``Xj / ¬Xj`` pair to stay.  Hence a disable
set of size ``r`` (one per variable pair) exists **iff** the instance is
satisfiable — keeping exactly the true literals connected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.theory.sat import ThreeSatInstance
from repro.topology.elements import LinkId, Switch
from repro.topology.graph import Topology


@dataclass
class ReductionGadget:
    """The constructed pod plus bookkeeping.

    Attributes:
        topo: The gadget topology (ToRs stage 0, aggs stage 1, spines 2).
        instance: The (padded) source 3-SAT instance.
        corrupting_links: The set ``L`` of agg→spine links.
        link_of_literal: Maps each literal (+i / -i) to its spine link.
    """

    topo: Topology
    instance: ThreeSatInstance
    corrupting_links: Set[LinkId]
    link_of_literal: Dict[int, LinkId]

    @property
    def r(self) -> int:
        return self.instance.num_vars

    @property
    def k(self) -> int:
        return self.instance.num_clauses


def _agg_name(literal: int) -> str:
    return f"X{literal}" if literal > 0 else f"notX{-literal}"


def build_gadget(
    instance: ThreeSatInstance, corruption_rate: float = 1e-3
) -> ReductionGadget:
    """Build the Lemma-A.1 gadget for a 3-SAT instance.

    Args:
        instance: Source instance; padded so ``k >= r``.
        corruption_rate: The common rate on every link of ``L``.
    """
    instance = instance.padded()
    r, k = instance.num_vars, instance.num_clauses
    topo = Topology(num_stages=3, name=f"sat-gadget-r{r}-k{k}")

    literals = [v for i in range(1, r + 1) for v in (i, -i)]
    for literal in literals:
        topo.add_switch(Switch(_agg_name(literal), stage=1))
    for index in range(1, k + 1):
        topo.add_switch(Switch(f"C{index}", stage=0))
        topo.add_switch(Switch(f"H{index}", stage=0))
    for literal in literals:
        topo.add_switch(Switch(f"spine-{_agg_name(literal)}", stage=2))

    # Clause gadgets: Ci -> aggs of its literals.
    for index, clause in enumerate(instance.clauses, start=1):
        for literal in set(clause):
            topo.add_link(f"C{index}", _agg_name(literal))
    # Variable gadgets: Hj -> {Xj, notXj} (j <= r), else -> {X1, notX1}.
    for index in range(1, k + 1):
        variable = index if index <= r else 1
        topo.add_link(f"H{index}", _agg_name(variable))
        topo.add_link(f"H{index}", _agg_name(-variable))

    corrupting: Set[LinkId] = set()
    link_of_literal: Dict[int, LinkId] = {}
    for literal in literals:
        agg = _agg_name(literal)
        link_id = topo.add_link(agg, f"spine-{agg}")
        topo.set_corruption(link_id, corruption_rate)
        corrupting.add(link_id)
        link_of_literal[literal] = link_id

    return ReductionGadget(
        topo=topo,
        instance=instance,
        corrupting_links=corrupting,
        link_of_literal=link_of_literal,
    )


def disable_set_from_assignment(
    gadget: ReductionGadget, assignment: List[bool]
) -> Set[LinkId]:
    """The size-``r`` disable set induced by a satisfying assignment.

    Keeps the spine link of every *true* literal; disables the false ones
    ("a solution to a satisfiable 3-SAT instance tells us how to pick which
    of the links from each Xi, ¬Xi pair should remain connected").
    """
    if len(assignment) != gadget.r:
        raise ValueError("assignment length mismatch")
    disabled = set()
    for variable, truth in enumerate(assignment, start=1):
        false_literal = -variable if truth else variable
        disabled.add(gadget.link_of_literal[false_literal])
    return disabled


def assignment_from_disable_set(
    gadget: ReductionGadget, disabled: Set[LinkId]
) -> List[bool]:
    """Recover a variable assignment from a feasible size-``r`` disable set.

    Variable ``i`` is True iff ``Xi``'s spine link stays connected.
    """
    assignment = []
    for variable in range(1, gadget.r + 1):
        positive_disabled = gadget.link_of_literal[variable] in disabled
        assignment.append(not positive_disabled)
    return assignment


def tor_connectivity_ok(
    gadget: ReductionGadget, disabled: Set[LinkId]
) -> bool:
    """Whether every ToR keeps a spine path with ``disabled`` turned off."""
    topo = gadget.topo
    # An agg is connected iff its spine link survives.
    connected_aggs = {
        topo.link(lid).lower
        for lid in gadget.corrupting_links
        if lid not in disabled
    }
    for tor_name in topo.tors():
        has_path = any(
            topo.link(lid).upper in connected_aggs
            for lid in topo.uplinks(tor_name)
        )
        if not has_path:
            return False
    return True


def max_disable_size_bruteforce(gadget: ReductionGadget) -> Tuple[int, Set[LinkId]]:
    """Exhaustively find the largest feasible disable subset of ``L``.

    Exponential in ``2r``; fine for the reduction's test instances.
    """
    links = sorted(gadget.corrupting_links)
    n = len(links)
    best_size, best_set = 0, set()
    for mask in range(1 << n):
        subset = {links[i] for i in range(n) if mask >> i & 1}
        if len(subset) <= best_size:
            continue
        if tor_connectivity_ok(gadget, subset):
            best_size, best_set = len(subset), subset
    return best_size, best_set
