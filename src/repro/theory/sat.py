"""3-SAT instances and a small DPLL solver.

Appendix A reduces 3-SAT (exactly three literals per clause) to the
link-disabling problem.  This module supplies the SAT side: instance
representation, satisfiability checking, a DPLL solver for the small
instances the reduction experiments use, and seeded random instances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: A literal is a non-zero int: +i means variable i, -i means its negation.
Literal = int
Clause = Tuple[Literal, Literal, Literal]


@dataclass(frozen=True)
class ThreeSatInstance:
    """A 3-SAT instance with ``num_vars`` variables (1-indexed).

    The Appendix-A construction additionally requires ``k >= r`` (at least
    as many clauses as variables); :meth:`padded` enforces it by duplicating
    a clause, which does not change satisfiability.
    """

    num_vars: int
    clauses: Tuple[Clause, ...]

    def __post_init__(self):
        for clause in self.clauses:
            if len(clause) != 3:
                raise ValueError(f"clause {clause} must have 3 literals")
            for literal in clause:
                if literal == 0 or abs(literal) > self.num_vars:
                    raise ValueError(
                        f"literal {literal} out of range for "
                        f"{self.num_vars} variables"
                    )

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def is_satisfied_by(self, assignment: Sequence[bool]) -> bool:
        """Whether ``assignment`` (index 0 = variable 1) satisfies all
        clauses."""
        if len(assignment) != self.num_vars:
            raise ValueError("assignment length mismatch")

        def value(literal: Literal) -> bool:
            truth = assignment[abs(literal) - 1]
            return truth if literal > 0 else not truth

        return all(any(value(lit) for lit in clause) for clause in self.clauses)

    def padded(self) -> "ThreeSatInstance":
        """Ensure ``num_clauses >= num_vars`` by duplicating the first
        clause (satisfiability-preserving)."""
        clauses = list(self.clauses)
        while len(clauses) < self.num_vars:
            clauses.append(clauses[0])
        return ThreeSatInstance(self.num_vars, tuple(clauses))


def dpll_solve(instance: ThreeSatInstance) -> Optional[List[bool]]:
    """DPLL with unit propagation; returns a satisfying assignment or None."""

    def propagate(
        clauses: List[List[Literal]], assignment: Dict[int, bool]
    ) -> Optional[List[List[Literal]]]:
        changed = True
        while changed:
            changed = False
            next_clauses: List[List[Literal]] = []
            for clause in clauses:
                resolved = False
                remaining: List[Literal] = []
                for literal in clause:
                    var = abs(literal)
                    if var in assignment:
                        if (literal > 0) == assignment[var]:
                            resolved = True
                            break
                    else:
                        remaining.append(literal)
                if resolved:
                    continue
                if not remaining:
                    return None  # conflict
                if len(remaining) == 1:
                    literal = remaining[0]
                    assignment[abs(literal)] = literal > 0
                    changed = True
                else:
                    next_clauses.append(remaining)
            clauses = next_clauses
        return clauses

    def search(
        clauses: List[List[Literal]], assignment: Dict[int, bool]
    ) -> Optional[Dict[int, bool]]:
        clauses = propagate([list(c) for c in clauses], assignment)
        if clauses is None:
            return None
        if not clauses:
            return assignment
        variable = abs(clauses[0][0])
        for choice in (True, False):
            trial = dict(assignment)
            trial[variable] = choice
            result = search(clauses, trial)
            if result is not None:
                return result
        return None

    result = search([list(c) for c in instance.clauses], {})
    if result is None:
        return None
    return [result.get(v, False) for v in range(1, instance.num_vars + 1)]


def is_satisfiable(instance: ThreeSatInstance) -> bool:
    """Satisfiability via :func:`dpll_solve`."""
    return dpll_solve(instance) is not None


def random_instance(
    num_vars: int, num_clauses: int, seed: int = 0
) -> ThreeSatInstance:
    """A uniformly random 3-SAT instance (distinct variables per clause)."""
    if num_vars < 3:
        raise ValueError("need at least 3 variables for 3-distinct literals")
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), 3)
        clause = tuple(
            v if rng.random() < 0.5 else -v for v in variables
        )
        clauses.append(clause)
    return ThreeSatInstance(num_vars, tuple(clauses))


def unsatisfiable_instance() -> ThreeSatInstance:
    """A small canonical UNSAT instance (all 8 sign patterns on 3 vars)."""
    clauses = []
    for s1 in (1, -1):
        for s2 in (1, -1):
            for s3 in (1, -1):
                clauses.append((s1 * 1, s2 * 2, s3 * 3))
    return ThreeSatInstance(3, tuple(clauses))
