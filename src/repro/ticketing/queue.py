"""The FIFO ticket queue and service-time models.

§5.2: "Generated tickets are placed in a FIFO queue ... on average, it
takes two days for technicians to resolve a ticket; this means, each failed
repair attempt adds two more days during which the link must be disabled."

Two service models are provided:

- :class:`FixedDelayQueue` — every ticket completes service a fixed time
  after creation (the model §7.1's simulations use);
- :class:`TechnicianPoolQueue` — ``k`` technicians each work one ticket at
  a time (an extension that makes queueing delay grow with backlog).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import List, Optional, Tuple

from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.ticketing.ticket import Ticket, TicketStatus

TWO_DAYS_S = 2 * 86_400.0


class FixedDelayQueue:
    """Tickets complete service ``service_time_s`` after submission.

    This matches the paper's simulation simplification: "Links stay in that
    queue for two days, the average service time in our DCNs."
    """

    def __init__(
        self,
        service_time_s: float = TWO_DAYS_S,
        obs: Recorder = NULL_RECORDER,
    ):
        if service_time_s < 0:
            raise ValueError("service time cannot be negative")
        self.service_time_s = service_time_s
        self.obs = obs
        self._heap: List[Tuple[float, int, Ticket]] = []

    def submit(self, ticket: Ticket, now_s: float) -> float:
        """Enqueue a ticket; returns its service-completion time."""
        done_s = now_s + self.service_time_s
        heapq.heappush(self._heap, (done_s, ticket.ticket_id, ticket))
        ticket.status = TicketStatus.IN_SERVICE
        if self.obs.enabled:
            self.obs.count("ticket_submissions_total", queue="fixed")
            self.obs.gauge("ticket_queue_depth", len(self._heap), queue="fixed")
        return done_s

    def pop_due(self, now_s: float) -> List[Ticket]:
        """Tickets whose service completes at or before ``now_s``."""
        due = []
        while self._heap and self._heap[0][0] <= now_s:
            due.append(heapq.heappop(self._heap)[2])
        if self.obs.enabled and due:
            for ticket in due:
                self.obs.observe(
                    "ticket_wait_seconds",
                    now_s - ticket.created_s,
                    queue="fixed",
                )
            self.obs.gauge("ticket_queue_depth", len(self._heap), queue="fixed")
        return due

    def next_completion(self) -> Optional[float]:
        """Timestamp of the next completion, or None when idle."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)


class TechnicianPoolQueue:
    """A FIFO queue drained by ``k`` technicians (extension).

    Each ticket occupies one technician for ``service_time_s``; waiting
    time therefore grows with backlog, as the paper observes in production
    ("the exact time needed for a fix depends on the number of tickets in
    the queue").
    """

    def __init__(
        self,
        num_technicians: int = 4,
        service_time_s: float = TWO_DAYS_S,
        obs: Recorder = NULL_RECORDER,
    ):
        if num_technicians < 1:
            raise ValueError("need at least one technician")
        self.num_technicians = num_technicians
        self.service_time_s = service_time_s
        self.obs = obs
        self._waiting: deque = deque()
        self._in_service: List[Tuple[float, int, Ticket]] = []

    def submit(self, ticket: Ticket, now_s: float) -> None:
        """Enqueue a ticket (it starts service when a technician frees up)."""
        self._waiting.append(ticket)
        self._dispatch(now_s)
        if self.obs.enabled:
            self.obs.count("ticket_submissions_total", queue="pool")
            self.obs.gauge("ticket_queue_depth", len(self), queue="pool")
            self.obs.gauge(
                "ticket_queue_backlog", len(self._waiting), queue="pool"
            )

    def _dispatch(self, now_s: float) -> None:
        while self._waiting and len(self._in_service) < self.num_technicians:
            ticket = self._waiting.popleft()
            ticket.status = TicketStatus.IN_SERVICE
            heapq.heappush(
                self._in_service,
                (now_s + self.service_time_s, ticket.ticket_id, ticket),
            )

    def pop_due(self, now_s: float) -> List[Ticket]:
        """Tickets finishing service by ``now_s`` (frees technicians)."""
        due = []
        while self._in_service and self._in_service[0][0] <= now_s:
            due.append(heapq.heappop(self._in_service)[2])
        self._dispatch(now_s)
        if self.obs.enabled and due:
            for ticket in due:
                self.obs.observe(
                    "ticket_wait_seconds",
                    now_s - ticket.created_s,
                    queue="pool",
                )
            self.obs.gauge("ticket_queue_depth", len(self), queue="pool")
            self.obs.gauge(
                "ticket_queue_backlog", len(self._waiting), queue="pool"
            )
        return due

    def next_completion(self) -> Optional[float]:
        return self._in_service[0][0] if self._in_service else None

    def backlog(self) -> int:
        """Tickets waiting for a technician."""
        return len(self._waiting)

    def __len__(self) -> int:
        return len(self._waiting) + len(self._in_service)
