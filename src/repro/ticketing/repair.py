"""Repair campaigns: end-to-end ticket lifecycles and accuracy accounting.

This module reproduces §7.2's experiment mechanics: faults arrive, tickets
are issued (with or without recommendations), technicians attempt repairs
(possibly repeatedly, Figure 12), and we score first-attempt accuracy and
time-to-repair.  It also provides the simplified two-or-four-day repair
duration model §7.1's simulations use.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.recommendation import (
    RecommendationEngine,
    RepairAction,
    deployed_engine,
    full_engine,
)
from repro.faults.condition import observation_from_condition
from repro.faults.contamination import ContaminationFault
from repro.faults.decaying_tx import DecayingTransmitterFault
from repro.faults.fiber_damage import FiberDamageFault
from repro.faults.root_causes import RootCause, sample_root_cause
from repro.faults.shared_component import SharedComponentFault
from repro.faults.transceiver_fault import TransceiverFault
from repro.ticketing.queue import TWO_DAYS_S
from repro.ticketing.technician import (
    LegacyTechnician,
    RecommendationFollowingTechnician,
)
from repro.ticketing.ticket import RepairAttempt, Ticket, TicketStatus
from repro.workloads.rates import sample_corruption_rate

_FAULT_CLASSES = {
    RootCause.CONNECTOR_CONTAMINATION: ContaminationFault,
    RootCause.DAMAGED_FIBER: FiberDamageFault,
    RootCause.DECAYING_TRANSMITTER: DecayingTransmitterFault,
    RootCause.BAD_OR_LOOSE_TRANSCEIVER: TransceiverFault,
    RootCause.SHARED_COMPONENT: SharedComponentFault,
}

MAX_ATTEMPTS = 6


def repair_duration_days(accuracy: float, rng: random.Random) -> float:
    """§7.1's simplified repair model.

    "With CorrOpt, 80% [of] the links are repaired in two days and the rest
    in four days (i.e., requiring two attempts).  Without CorrOpt, 50% of
    the links are repaired in two days and the rest in four days."
    """
    if not 0.0 <= accuracy <= 1.0:
        raise ValueError(f"accuracy {accuracy} outside [0, 1]")
    return 2.0 if rng.random() < accuracy else 4.0


@dataclass
class CampaignResult:
    """Aggregate outcome of a repair campaign.

    Attributes:
        tickets: All tickets, in creation order.
        first_attempt_successes: Tickets fixed on the first visit.
        followed_and_succeeded / followed_total: Accuracy conditioned on
            the technician actually following the recommendation (§7.2's
            80% number).
    """

    tickets: List[Ticket] = field(default_factory=list)
    first_attempt_successes: int = 0
    followed_total: int = 0
    followed_and_succeeded: int = 0

    @property
    def first_attempt_accuracy(self) -> float:
        """Fraction of tickets resolved on the first attempt."""
        if not self.tickets:
            return 0.0
        return self.first_attempt_successes / len(self.tickets)

    @property
    def followed_accuracy(self) -> float:
        """First-attempt accuracy among followed recommendations."""
        if self.followed_total == 0:
            return 0.0
        return self.followed_and_succeeded / self.followed_total

    def mean_attempts(self) -> float:
        if not self.tickets:
            return 0.0
        return sum(t.num_attempts for t in self.tickets) / len(self.tickets)

    def mean_repair_days(self, service_days: float = 2.0) -> float:
        """Average days-to-fix under §7.1's two-point repair model.

        Mirrors :func:`repair_duration_days`: a ticket fixed on the first
        visit takes ``service_days``; anything slower takes
        ``2 * service_days`` total ("the rest in four days"), regardless
        of how many extra visits Figure 12's escalation needed.  The
        previous ``mean_attempts() * service_days`` overcounted
        multi-attempt tickets relative to that model.
        """
        if not self.tickets:
            return 0.0
        total = sum(
            service_days
            if ticket.first_attempt_succeeded()
            else 2.0 * service_days
            for ticket in self.tickets
        )
        return total / len(self.tickets)


def run_repair_campaign(
    num_faults: int,
    policy: str = "corropt",
    seed: int = 0,
    compliance: float = 1.0,
    engine: Optional[RecommendationEngine] = None,
) -> CampaignResult:
    """Simulate ``num_faults`` independent repairs under a policy.

    Args:
        num_faults: Number of faulty links to repair.
        policy: ``"corropt"`` (full Algorithm 1), ``"deployed"``
            (simplified engine of §7.2), or ``"legacy"`` (no
            recommendations, manual diagnosis).
        seed: RNG seed.
        compliance: Probability a technician follows the recommendation
            (ignored by ``"legacy"``).
        engine: Override the recommendation engine.

    Returns:
        A :class:`CampaignResult` with accuracy statistics.
    """
    if policy not in ("corropt", "deployed", "legacy"):
        raise ValueError(f"unknown policy {policy!r}")
    rng = random.Random(seed)
    if engine is None:
        engine = deployed_engine() if policy == "deployed" else full_engine()
    use_recommendations = policy != "legacy"
    if use_recommendations:
        technician = RecommendationFollowingTechnician(
            compliance=compliance, seed=seed + 1
        )
    else:
        technician = LegacyTechnician(seed=seed + 1)

    result = CampaignResult()
    for index in range(num_faults):
        cause = sample_root_cause(rng)
        rate = sample_corruption_rate(rng)
        fault = _FAULT_CLASSES[cause].sample(rate, rng)
        condition = fault.condition(rng)
        link_id = (f"sw{index}a", f"sw{index}b")

        ticket = Ticket(link_id=link_id, created_s=0.0, fault=fault)
        if use_recommendations:
            observation = observation_from_condition(
                link_id, condition, tech=fault.tech
            )
            ticket.recommendation = engine.recommend(observation)

        time_s = 0.0
        for _attempt in range(MAX_ATTEMPTS):
            time_s += TWO_DAYS_S
            if use_recommendations:
                # Re-issue the recommendation with the updated history so
                # Algorithm 1's reseat→replace escalation can fire.
                observation = observation_from_condition(
                    link_id,
                    condition,
                    tech=fault.tech,
                    recently_reseated=ticket.recently_reseated(),
                )
                recommendation = engine.recommend(observation)
                outcome = technician.attempt(
                    ticket, recommendation_action=recommendation.action
                )
            else:
                outcome = technician.attempt(ticket)
            ticket.record_attempt(
                RepairAttempt(
                    time_s=time_s,
                    action=outcome.action,
                    followed_recommendation=outcome.followed_recommendation,
                    success=outcome.success,
                )
            )
            if outcome.success:
                break
        # Unfixable within MAX_ATTEMPTS: close out as a replacement of
        # everything (counts as slow, not as a first-attempt success).
        if ticket.status is not TicketStatus.RESOLVED:
            ticket.status = TicketStatus.RESOLVED

        result.tickets.append(ticket)
        if ticket.first_attempt_succeeded():
            result.first_attempt_successes += 1
        first = ticket.attempts[0]
        if first.followed_recommendation:
            result.followed_total += 1
            if first.success:
                result.followed_and_succeeded += 1
    return result
