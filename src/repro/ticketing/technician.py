"""Technician models: who actually performs the repair.

§5.2 contrasts two worlds:

- **Legacy**: technicians diagnose manually ("inspect the transceiver and
  the fiber to find tight bends or damage ... If they cannot find any
  problem visually, they may choose to clean the connector"), yielding
  ~50% first-attempt success;
- **CorrOpt**: technicians follow the ticket's recommendation, yielding
  ~80% — except that in the early deployment "30% of the time, technicians
  were ignoring the recommendations", dragging the observed rate to 58%.

The legacy model is mechanistic: the technician physically inspects the
ground-truth fault and notices visually apparent causes with calibrated
probabilities; otherwise they fall back to the standard action sequence
(clean → reseat → replace transceiver → replace cable).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.recommendation import RepairAction
from repro.faults.root_causes import RootCause
from repro.ticketing.ticket import Ticket

#: Legacy visual-inspection detection probabilities (calibrated so the
#: aggregate legacy first-attempt success lands at the paper's ~50%).
VISUAL_DETECTS_BENT_FIBER = 0.5
VISUAL_DETECTS_LOOSE_TRANSCEIVER = 0.6
VISUAL_DETECTS_SHARED_PATTERN = 0.15

#: Cleaning occasionally fails to remove stubborn contamination (scratches,
#: pits — §4: "airborne dirt particles may even scratch the connectors
#: permanently").
CLEANING_SUCCESS_ON_CONTAMINATION = 0.85

#: The legacy escalation ladder when nothing is visually wrong.
LEGACY_SEQUENCE = [
    RepairAction.CLEAN_FIBER,
    RepairAction.RESEAT_TRANSCEIVER,
    RepairAction.REPLACE_TRANSCEIVER,
    RepairAction.REPLACE_CABLE,
]


@dataclass
class AttemptResult:
    """What a technician did on one visit."""

    action: RepairAction
    followed_recommendation: bool
    success: bool


class LegacyTechnician:
    """Root-cause-agnostic repair (the pre-CorrOpt state of the art)."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def choose_action(self, ticket: Ticket) -> RepairAction:
        """Pick an action via visual inspection, else the escalation ladder."""
        fault = ticket.fault
        rng = self._rng
        if fault is not None and ticket.num_attempts == 0:
            cause = fault.cause
            if (
                cause is RootCause.DAMAGED_FIBER
                and rng.random() < VISUAL_DETECTS_BENT_FIBER
            ):
                return RepairAction.REPLACE_CABLE
            if (
                cause is RootCause.BAD_OR_LOOSE_TRANSCEIVER
                and getattr(fault, "loose", False)
                and rng.random() < VISUAL_DETECTS_LOOSE_TRANSCEIVER
            ):
                return RepairAction.RESEAT_TRANSCEIVER
            if (
                cause is RootCause.SHARED_COMPONENT
                and rng.random() < VISUAL_DETECTS_SHARED_PATTERN
            ):
                return RepairAction.REPLACE_SHARED_COMPONENT
        index = min(ticket.num_attempts, len(LEGACY_SEQUENCE) - 1)
        return LEGACY_SEQUENCE[index]

    def attempt(self, ticket: Ticket) -> AttemptResult:
        """Perform one repair attempt on the ticket's fault."""
        action = self.choose_action(ticket)
        success = self._adjudicate(ticket, action)
        return AttemptResult(
            action=action, followed_recommendation=False, success=success
        )

    def _adjudicate(self, ticket: Ticket, action: RepairAction) -> bool:
        fault = ticket.fault
        if fault is None:
            return False
        success = fault.fixed_by(action)
        if (
            success
            and action is RepairAction.CLEAN_FIBER
            and fault.cause is RootCause.CONNECTOR_CONTAMINATION
        ):
            success = self._rng.random() < CLEANING_SUCCESS_ON_CONTAMINATION
        return success


class RecommendationFollowingTechnician(LegacyTechnician):
    """A technician working CorrOpt tickets.

    Args:
        compliance: Probability of following the ticket's recommendation;
            §7.2 observed ~70% in the early deployment.  Non-compliant
            visits fall back to legacy behaviour.
        seed: RNG seed.
    """

    def __init__(self, compliance: float = 1.0, seed: int = 0):
        super().__init__(seed=seed)
        if not 0.0 <= compliance <= 1.0:
            raise ValueError(f"compliance {compliance} outside [0, 1]")
        self.compliance = compliance

    def attempt(
        self, ticket: Ticket, recommendation_action: Optional[RepairAction] = None
    ) -> AttemptResult:
        """One visit: follow the recommendation with prob. ``compliance``.

        Args:
            ticket: The ticket (recommendation read from it by default).
            recommendation_action: Override for re-issued recommendations
                on later attempts (Algorithm 1 consults repair history).
        """
        action = recommendation_action
        if action is None and ticket.recommendation is not None:
            action = ticket.recommendation.action
        if action is not None and self._rng.random() < self.compliance:
            return AttemptResult(
                action=action,
                followed_recommendation=True,
                success=self._adjudicate(ticket, action),
            )
        legacy = super().attempt(ticket)
        return AttemptResult(
            action=legacy.action,
            followed_recommendation=False,
            success=legacy.success,
        )
