"""Collateral-aware repair batching (§8, "Accounting for the impact of
repair").

Repairing one member of a breakout cable takes the whole cable — including
its healthy links — offline ("an additional three, healthy links have to be
turned off").  This scheduler decides, per cable, whether the collateral
disable is currently safe under the capacity constraints, batches all of a
cable's tickets into one visit (one repair fixes every member), and defers
repairs whose collateral would violate a ToR's constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.core.constraints import CapacityConstraint
from repro.core.path_counting import PathCounter
from repro.ticketing.ticket import Ticket
from repro.topology.breakout import repair_collateral
from repro.topology.elements import LinkId
from repro.topology.graph import Topology


@dataclass
class RepairBatch:
    """One technician visit covering a shared component.

    Attributes:
        tickets: Tickets resolved by this visit.
        take_down: Links that must be offline during the repair (the
            faulty ones plus healthy collateral).
        collateral: The healthy subset of ``take_down``.
        safe_now: Whether taking everything down meets all constraints.
        violated_tors: ToRs that block the batch when not safe.
    """

    tickets: List[Ticket]
    take_down: Set[LinkId]
    collateral: Set[LinkId]
    safe_now: bool
    violated_tors: Dict[str, float] = field(default_factory=dict)

    @property
    def batch_key(self) -> LinkId:
        return min(self.take_down)


class CollateralAwareScheduler:
    """Plans repair visits that respect capacity despite collateral.

    Args:
        topo: Live topology (reads administrative state at planning time).
        constraint: Per-ToR capacity constraints.
        counter: Optional shared path counter.
    """

    def __init__(
        self,
        topo: Topology,
        constraint: CapacityConstraint,
        counter: Optional[PathCounter] = None,
    ):
        self._topo = topo
        self.constraint = constraint
        self.counter = counter or PathCounter(topo)

    def _collateral_safe(
        self, take_down: Set[LinkId]
    ) -> Dict[str, float]:
        """ToRs whose constraint breaks if ``take_down`` all go offline.

        Already-disabled members cost nothing extra; only the *additional*
        disables matter.
        """
        extra = frozenset(
            lid for lid in take_down if self._topo.link(lid).enabled
        )
        if not extra:
            return {}
        tors: Set[str] = set()
        for lid in extra:
            tors.update(self.counter.affected_tors(lid))
        if not tors:
            return {}
        ordered = sorted(tors)
        closure = self.counter.upstream_closure(ordered)
        fractions = self.counter.restricted_fractions(ordered, closure, extra)
        return self.constraint.violations(fractions)

    def plan(self, tickets: Sequence[Ticket]) -> List[RepairBatch]:
        """Group tickets into batches and mark each safe or deferred.

        Tickets on the same breakout cable merge into one batch (one visit
        repairs the shared cable).  Plain-link tickets are singleton
        batches whose collateral is empty.
        """
        by_key: Dict[LinkId, List[Ticket]] = {}
        take_down_of: Dict[LinkId, Set[LinkId]] = {}
        for ticket in tickets:
            take_down = repair_collateral(self._topo, ticket.link_id)
            key = min(take_down)
            by_key.setdefault(key, []).append(ticket)
            take_down_of[key] = take_down

        batches: List[RepairBatch] = []
        for key in sorted(by_key):
            take_down = take_down_of[key]
            faulty = {t.link_id for t in by_key[key]}
            violations = self._collateral_safe(take_down)
            batches.append(
                RepairBatch(
                    tickets=by_key[key],
                    take_down=take_down,
                    collateral=take_down - faulty,
                    safe_now=not violations,
                    violated_tors=violations,
                )
            )
        return batches

    def dispatchable(self, tickets: Sequence[Ticket]) -> List[RepairBatch]:
        """The safe subset of :meth:`plan`, ready for technicians now."""
        return [batch for batch in self.plan(tickets) if batch.safe_now]
