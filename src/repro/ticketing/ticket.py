"""Maintenance tickets.

Each disabled link gets a ticket for manual repair (§5.1: "CorrOpt disables
l and creates a maintenance ticket for it with a recommended repair").
Tickets carry the recommendation, the attempt history (Figure 12 shows a
link cycling through repeated failed repairs), and — in simulation — the
ground-truth fault used to adjudicate repair attempts.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.recommendation import Recommendation, RepairAction
from repro.topology.elements import LinkId

_ticket_ids = itertools.count(1)


class TicketStatus(enum.Enum):
    """Lifecycle of a ticket."""

    OPEN = "open"
    IN_SERVICE = "in service"
    RESOLVED = "resolved"


@dataclass
class RepairAttempt:
    """One technician visit: what was done and whether it worked."""

    time_s: float
    action: RepairAction
    followed_recommendation: bool
    success: bool


@dataclass
class Ticket:
    """A repair ticket for one disabled link.

    Attributes:
        ticket_id: Monotonic id (FIFO order).
        link_id: The corrupting link.
        created_s: Creation time.
        recommendation: CorrOpt's suggested repair (None for the legacy
            process, which issues tickets without guidance).
        fault: Ground-truth fault (simulation only; hidden from policies
            except through physical-inspection models).
        attempts: Repair attempts so far, oldest first.
        status: Lifecycle state.
    """

    link_id: LinkId
    created_s: float
    recommendation: Optional[Recommendation] = None
    fault: Optional[object] = None
    attempts: List[RepairAttempt] = field(default_factory=list)
    status: TicketStatus = TicketStatus.OPEN
    ticket_id: int = field(default_factory=lambda: next(_ticket_ids))

    @property
    def num_attempts(self) -> int:
        return len(self.attempts)

    def recently_reseated(self) -> bool:
        """Whether a reseat was tried in the attempt history.

        Algorithm 1 (lines 17–20) consults exactly this bit to escalate
        from reseating to replacing a transceiver.
        """
        return any(
            attempt.action is RepairAction.RESEAT_TRANSCEIVER
            for attempt in self.attempts
        )

    def record_attempt(self, attempt: RepairAttempt) -> None:
        """Append an attempt; resolves the ticket on success."""
        self.attempts.append(attempt)
        if attempt.success:
            self.status = TicketStatus.RESOLVED

    def first_attempt_succeeded(self) -> bool:
        """§7.2's accuracy metric: was the link fixed on the first visit?"""
        return bool(self.attempts) and self.attempts[0].success
