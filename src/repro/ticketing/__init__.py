"""Ticketing substrate: tickets, FIFO queues, technicians, repair campaigns.

Models the human repair loop of §5.2/§7.2: disabled links become tickets,
tickets wait ~two days in a FIFO queue, technicians attempt repairs that
succeed only when the action matches the root cause, and failed attempts
cycle the link back through disable → ticket → repair (Figure 12).
"""

from repro.ticketing.batching import CollateralAwareScheduler, RepairBatch
from repro.ticketing.queue import (
    TWO_DAYS_S,
    FixedDelayQueue,
    TechnicianPoolQueue,
)
from repro.ticketing.repair import (
    MAX_ATTEMPTS,
    CampaignResult,
    repair_duration_days,
    run_repair_campaign,
)
from repro.ticketing.technician import (
    LEGACY_SEQUENCE,
    AttemptResult,
    LegacyTechnician,
    RecommendationFollowingTechnician,
)
from repro.ticketing.ticket import (
    RepairAttempt,
    Ticket,
    TicketStatus,
)

__all__ = [
    "AttemptResult",
    "CollateralAwareScheduler",
    "RepairBatch",
    "CampaignResult",
    "FixedDelayQueue",
    "LEGACY_SEQUENCE",
    "LegacyTechnician",
    "MAX_ATTEMPTS",
    "RecommendationFollowingTechnician",
    "RepairAttempt",
    "TWO_DAYS_S",
    "TechnicianPoolQueue",
    "Ticket",
    "TicketStatus",
    "repair_duration_days",
    "run_repair_campaign",
]
