"""The 15-minute SNMP poller and its per-link monitoring records.

§2: counters and optical power are queried every 15 minutes; "our network
operators found SNMP to be a reliable and lightweight mechanism".  The
poller walks a topology at each tick, derives per-direction loss rates from
counter differences, and appends to a :class:`~repro.telemetry.store.
TelemetryStore`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.telemetry.counters import CounterSnapshot, DirectionCounters
from repro.telemetry.sanitizer import TelemetrySanitizer
from repro.telemetry.store import TelemetryStore
from repro.topology.elements import Direction, DirectionId, LinkId
from repro.topology.graph import Topology

POLL_INTERVAL_S = 900.0  # 15 minutes


def _zero_congestion(_did: DirectionId, _t: float) -> float:
    """Default congestion model: no drops (module-level so pollers stay
    picklable for service checkpoint/restore)."""
    return 0.0


@dataclass
class OpticalReading:
    """Optical power levels of one link at one poll."""

    time_s: float
    tx_lower_dbm: float
    rx_lower_dbm: float
    tx_upper_dbm: float
    rx_upper_dbm: float


class SnmpPoller:
    """Polls a topology every 15 minutes into a telemetry store.

    Traffic on each direction is supplied by a callable (the congestion
    substrate provides realistic diurnal traffic; tests can use constants).

    Args:
        topo: Topology to monitor.
        store: Destination store.
        packets_fn: ``(direction_id, time_s) -> offered packets`` for the
            interval ending at ``time_s``.
        congestion_fn: Optional ``(direction_id, time_s) -> loss rate`` for
            congestion drops (default: none).
        interval_s: Poll spacing.
        transport: Optional delivery shim between the device counters and
            the collector.  Must expose ``deliver(direction_id, snapshot)
            -> List[CounterSnapshot]`` (empty = missed poll, several =
            duplicated / late samples) and ``deliver_optical(link_id,
            reading) -> OpticalReading``; see :mod:`repro.faults.
            telemetry_faults`.  ``None`` (the default) keeps the happy
            path untouched.
        sanitizer: Optional :class:`~repro.telemetry.sanitizer.
            TelemetrySanitizer`.  When set, delivered snapshots are
            diffed, wrap/reset-corrected, and quality-flagged by the
            sanitizer instead of the poller's raw differencing, and every
            store append carries the sample's quality flag.
        attribution_fn: Optional ``link_id -> link_id`` map modelling a
            wrong inventory database (A3-style miswiring): the FCS
            signature recorded for a link is read from the *physical*
            link its monitored port is actually cabled to.  Traffic and
            drop counters stay with the monitored port (they are
            measured at the switch, not on the cable).  ``None`` (the
            default) keeps the happy path untouched.
        obs: Observability recorder; each poll emits a ``poll`` span with
            ``poll.collect`` / ``poll.sanitize`` / ``poll.store`` children
            plus missed-poll counters (no-op by default).
    """

    def __init__(
        self,
        topo: Topology,
        store: TelemetryStore,
        packets_fn: Callable[[DirectionId, float], int],
        congestion_fn: Optional[Callable[[DirectionId, float], float]] = None,
        interval_s: float = POLL_INTERVAL_S,
        transport=None,
        sanitizer: Optional[TelemetrySanitizer] = None,
        attribution_fn: Optional[Callable[[LinkId], LinkId]] = None,
        obs: Recorder = NULL_RECORDER,
    ):
        self._topo = topo
        self._store = store
        self._packets_fn = packets_fn
        self._congestion_fn = congestion_fn or _zero_congestion
        self._attribution_fn = attribution_fn
        self.interval_s = interval_s
        self.transport = transport
        self.sanitizer = sanitizer
        self.obs = obs
        self._counters: Dict[DirectionId, DirectionCounters] = {}
        self._previous: Dict[DirectionId, CounterSnapshot] = {}
        self.missed_polls = 0
        self.time_s = 0.0

    def _counters_for(self, direction_id: DirectionId) -> DirectionCounters:
        if direction_id not in self._counters:
            self._counters[direction_id] = DirectionCounters(direction_id)
        return self._counters[direction_id]

    def poll_once(self) -> float:
        """Advance one interval, accumulate counters, store loss rates.

        The poll is organised in three phases — collect (device counters
        and transport delivery), sanitize (diffing / quality rating), and
        store — each traced as a child span of ``poll``.  Per-direction
        processing order is identical to the historical single loop, so
        fault-transport RNG consumption and sanitizer state transitions
        are unchanged.

        Returns:
            The poll timestamp.
        """
        self.time_s += self.interval_s
        now = self.time_s
        obs = self.obs
        with obs.span("poll", cat="telemetry") as span:
            with obs.span("poll.collect", cat="telemetry"):
                deliveries = self._collect(now)
            with obs.span("poll.sanitize", cat="telemetry"):
                pending = self._sanitize(deliveries, now)
            with obs.span("poll.store", cat="telemetry"):
                self._store_pending(pending)
            if obs.enabled:
                span.set(directions=len(deliveries), stored=len(pending))
                obs.count("polls_total")
        return now

    def _collect(
        self, now: float
    ) -> List[Tuple[DirectionId, List[CounterSnapshot]]]:
        """Accumulate device counters and run transport delivery.

        Returns one ``(direction_id, delivered snapshots)`` entry per
        enabled direction; an empty delivery list marks a missed poll.
        """
        deliveries: List[Tuple[DirectionId, List[CounterSnapshot]]] = []
        for link in self._topo.links():
            if not link.enabled:
                # A disabled link carries no traffic (§8 notes monitoring
                # data stops flowing when a link is disabled).  Drop the
                # cached snapshot: the first poll after re-enable must
                # re-seed rather than diff against pre-disable counters
                # with a stale time base.
                for direction in (Direction.UP, Direction.DOWN):
                    self._previous.pop(link.direction_id(direction), None)
                continue
            source = link
            if self._attribution_fn is not None:
                physical = self._attribution_fn(link.link_id)
                if physical != link.link_id:
                    source = self._topo.link(physical)
            for direction in (Direction.UP, Direction.DOWN):
                did = link.direction_id(direction)
                packets = self._packets_fn(did, now)
                # FCS errors follow the physical cable (identity unless a
                # miswiring attribution map is installed); a disabled
                # physical link carries no traffic, hence no errors.
                corruption = (
                    source.corruption_rate[direction] if source.enabled
                    else 0.0
                )
                congestion = self._congestion_fn(did, now)
                counters = self._counters_for(did)
                counters.record_interval(packets, corruption, congestion)
                snap = counters.snapshot(now)
                if self.transport is not None:
                    delivered = self.transport.deliver(did, snap)
                else:
                    delivered = [snap]
                deliveries.append((did, delivered))
        return deliveries

    def _sanitize(
        self,
        deliveries: List[Tuple[DirectionId, List[CounterSnapshot]]],
        now: float,
    ) -> List[Tuple[DirectionId, float, float, float, float, object]]:
        """Turn deliveries into pending store appends.

        Each pending entry is ``(direction_id, time_s, corruption,
        congestion, utilization, quality-or-None)``.
        """
        obs = self.obs
        pending: List[
            Tuple[DirectionId, float, float, float, float, object]
        ] = []
        for did, delivered in deliveries:
            if not delivered:
                self.missed_polls += 1
                if obs.enabled:
                    obs.count("poller_missed_polls_total")
                if self.sanitizer is not None:
                    self.sanitizer.observe_missing(did, now)
                continue
            for snap in delivered:
                entry = self._sanitize_one(did, snap)
                if entry is not None:
                    pending.append(entry)
        return pending

    def _sanitize_one(
        self, did: DirectionId, snap: CounterSnapshot
    ) -> Optional[Tuple[DirectionId, float, float, float, float, object]]:
        """Rate one delivered snapshot (sanitizer or legacy raw diff)."""
        if self.sanitizer is not None:
            sample = self.sanitizer.ingest(
                did, snap, capacity_pkts_per_s=self._capacity_pkts_per_s(did)
            )
            if sample is None:
                return None
            return (
                did,
                sample.time_s,
                sample.corruption,
                sample.congestion,
                sample.utilization,
                sample.quality,
            )
        previous = self._previous.get(did)
        entry = None
        if previous is not None and snap.time_s > previous.time_s:
            capacity = self._capacity_pkts_per_s(did)
            interval = snap.time_s - previous.time_s
            sent = max(0, snap.total - previous.total)
            utilization = (
                min(1.0, sent / (capacity * interval)) if capacity > 0 else 0.0
            )
            entry = (
                did,
                snap.time_s,
                snap.corruption_rate_since(previous),
                snap.congestion_rate_since(previous),
                utilization,
                None,
            )
        if previous is None or snap.time_s >= previous.time_s:
            self._previous[did] = snap
        return entry

    def _store_pending(
        self,
        pending: List[Tuple[DirectionId, float, float, float, float, object]],
    ) -> None:
        """Append the rated samples to the store, in sanitize order."""
        for did, time_s, corruption, congestion, utilization, quality in (
            pending
        ):
            if quality is not None:
                self._store.append_rates(
                    did,
                    time_s,
                    corruption=corruption,
                    congestion=congestion,
                    utilization=utilization,
                    quality=quality,
                )
            else:
                self._store.append_rates(
                    did,
                    time_s,
                    corruption=corruption,
                    congestion=congestion,
                    utilization=utilization,
                )

    def _capacity_pkts_per_s(self, direction_id: DirectionId) -> float:
        """Line rate in packets/second, assuming 1000-byte packets."""
        link = self._topo.find_link(*direction_id)
        return link.capacity_gbps * 1e9 / 8.0 / 1000.0

    def run(self, num_polls: int) -> None:
        """Run ``num_polls`` consecutive polls."""
        for _ in range(num_polls):
            self.poll_once()

    def optical_reading(self, link_id: LinkId, conditions) -> OpticalReading:
        """Package a fault condition as an optical poll record.

        Orientation: ``LinkCondition`` side 1 is the receiver of the
        corrupting (UP) direction, i.e. the upper switch.  With a transport
        installed the reading passes through ``deliver_optical``, which may
        corrupt it (garbage-optics fault model).
        """
        reading = OpticalReading(
            time_s=self.time_s,
            tx_lower_dbm=conditions.tx2_dbm,
            rx_lower_dbm=conditions.rx2_dbm,
            tx_upper_dbm=conditions.tx1_dbm,
            rx_upper_dbm=conditions.rx1_dbm,
        )
        if self.transport is not None:
            reading = self.transport.deliver_optical(link_id, reading)
        return reading
