"""Fixed-interval time series with the statistics the paper uses.

The measurement study reduces per-link series to a handful of summary
statistics: coefficient of variation (Figure 2b), Pearson correlation with
utilization (Figure 3b), and means/maxima.  This module provides a small,
numpy-backed series type with exactly those reductions.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np


class TimeSeries:
    """A regularly sampled time series.

    Args:
        values: Sample values.
        interval_s: Spacing between samples in seconds (default: the
            paper's 15-minute SNMP polling interval).
        start_s: Timestamp of the first sample.
    """

    def __init__(
        self,
        values: Iterable[float],
        interval_s: float = 900.0,
        start_s: float = 0.0,
    ):
        self.values = np.asarray(list(values), dtype=float)
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.interval_s = interval_s
        self.start_s = start_s

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.values)

    def times(self) -> np.ndarray:
        """Sample timestamps in seconds."""
        return self.start_s + self.interval_s * np.arange(len(self.values))

    def mean(self) -> float:
        return float(np.mean(self.values)) if len(self.values) else 0.0

    def std(self) -> float:
        return float(np.std(self.values)) if len(self.values) else 0.0

    def max(self) -> float:
        return float(np.max(self.values)) if len(self.values) else 0.0

    def coefficient_of_variation(self) -> float:
        """CV = std / mean (Figure 2b's stability metric).

        Returns 0 for an all-zero (or empty) series: a link that never
        loses packets is perfectly stable.
        """
        mean = self.mean()
        if mean == 0.0:
            return 0.0
        return self.std() / mean

    def pearson_with(self, other: "TimeSeries") -> float:
        """Pearson correlation coefficient with another series.

        Returns 0 when either series is constant (correlation undefined) —
        the conservative choice for Figure 3's "no correlation" claim.
        """
        if len(self.values) != len(other.values):
            raise ValueError(
                f"length mismatch: {len(self.values)} vs {len(other.values)}"
            )
        if len(self.values) < 2:
            return 0.0
        a, b = self.values, other.values
        if np.std(a) == 0.0 or np.std(b) == 0.0:
            return 0.0
        return float(np.corrcoef(a, b)[0, 1])

    def log10(self, floor: float = 1e-10) -> "TimeSeries":
        """Element-wise log10 with a floor (the paper correlates utilization
        with the *logarithm* of loss rate; zeros are floored)."""
        return TimeSeries(
            np.log10(np.maximum(self.values, floor)),
            interval_s=self.interval_s,
            start_s=self.start_s,
        )

    def resample_daily(self) -> List[float]:
        """Sum samples into day buckets (Figure 1 counts losses per day)."""
        per_day = int(round(86_400.0 / self.interval_s))
        if per_day <= 0:
            raise ValueError("interval larger than a day")
        sums: List[float] = []
        for start in range(0, len(self.values), per_day):
            sums.append(float(np.sum(self.values[start : start + per_day])))
        return sums

    def slice(self, start: int, stop: Optional[int] = None) -> "TimeSeries":
        """Sub-series by sample index."""
        return TimeSeries(
            self.values[start:stop],
            interval_s=self.interval_s,
            start_s=self.start_s + start * self.interval_s,
        )


def cdf_points(values: Sequence[float]) -> List[tuple]:
    """Empirical CDF as sorted (value, fraction<=value) pairs.

    Used by every "CDF of ..." figure (2b, 3b, 18b).
    """
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0–100) of ``values``."""
    if not 0 <= q <= 100:
        raise ValueError("percentile must be in [0, 100]")
    if len(values) == 0:
        raise ValueError("no values")
    return float(np.percentile(np.asarray(values, dtype=float), q))
