"""SNMP-style per-direction link counters.

§2: "For each link, we use SNMP to query its packet drop, packet error, and
total packet counts, as well as its optical power levels every 15 minutes."
We keep the same three counters per link *direction*:

- ``total``  — packets transmitted onto the direction;
- ``errors`` — packets dropped because the CRC failed (corruption);
- ``drops``  — packets dropped at the egress queue (congestion).

Counters are cumulative and monotonically non-decreasing, like real SNMP
interface counters; loss *rates* come from differencing successive polls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.topology.elements import DirectionId


@dataclass
class CounterSnapshot:
    """A point-in-time reading of one direction's counters."""

    time_s: float
    total: int
    errors: int
    drops: int

    def corruption_rate_since(self, earlier: "CounterSnapshot") -> float:
        """Corruption loss rate over the interval since ``earlier``.

        Clamped to [0, 1]: a later snapshot with *smaller* counters (switch
        reboot reset, 32-bit wrap) would otherwise yield negative or >1
        rates.  Callers that need to distinguish wrap from reset should use
        :class:`~repro.telemetry.sanitizer.TelemetrySanitizer` instead of
        raw differencing.
        """
        sent = self.total - earlier.total
        if sent <= 0:
            return 0.0
        return min(1.0, max(0.0, (self.errors - earlier.errors) / sent))

    def congestion_rate_since(self, earlier: "CounterSnapshot") -> float:
        """Congestion loss rate over the interval since ``earlier``.

        Clamped to [0, 1] for the same reset/wrap reasons as
        :meth:`corruption_rate_since`.
        """
        sent = self.total - earlier.total
        if sent <= 0:
            return 0.0
        return min(1.0, max(0.0, (self.drops - earlier.drops) / sent))


@dataclass
class DirectionCounters:
    """Cumulative counters of one link direction.

    Attributes:
        direction_id: ``(src, dst)`` switch pair.
        total: Cumulative packets sent.
        errors: Cumulative corruption (CRC) drops.
        drops: Cumulative congestion drops.
    """

    direction_id: DirectionId
    total: int = 0
    errors: int = 0
    drops: int = 0
    _last_snapshot: Optional[CounterSnapshot] = field(default=None, repr=False)

    def record_interval(
        self, packets: int, corruption_rate: float, congestion_rate: float
    ) -> None:
        """Accumulate one monitoring interval's traffic.

        Args:
            packets: Packets offered in the interval.
            corruption_rate: Fraction lost to corruption.
            congestion_rate: Fraction lost to congestion.

        Raises:
            ValueError: On negative packets or rates outside [0, 1].
        """
        if packets < 0:
            raise ValueError("packet count cannot be negative")
        for name, rate in (
            ("corruption", corruption_rate),
            ("congestion", congestion_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate {rate} outside [0, 1]")
        self.total += packets
        # Corruption and congestion losses are disjoint counter events: a
        # corrupted frame is dropped at the CRC check, a congested one at
        # the queue.  Sub-packet expectations are rounded half-up so tiny
        # rates over large intervals still register.
        self.errors += int(packets * corruption_rate + 0.5)
        self.drops += int(packets * congestion_rate + 0.5)

    def snapshot(self, time_s: float) -> CounterSnapshot:
        """Take a cumulative snapshot at ``time_s``."""
        snap = CounterSnapshot(
            time_s=time_s, total=self.total, errors=self.errors, drops=self.drops
        )
        self._last_snapshot = snap
        return snap
