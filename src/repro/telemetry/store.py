"""In-memory telemetry store: per-direction loss-rate and utilization series.

The measurement analyses (§2–3) consume exactly three aligned series per
link direction: corruption loss rate, congestion loss rate, and utilization.
The store accumulates appends from the poller and exposes them as
:class:`~repro.telemetry.timeseries.TimeSeries`.

Appends are **gap-tolerant**: timestamps may jump forward (missed polls,
disabled links), and each sample carries a :class:`~repro.telemetry.
sanitizer.SampleQuality` flag.  Duplicate or out-of-order timestamps are
dropped and counted rather than raised — production monitoring feeds
deliver them routinely, and the store must never take the pipeline down.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.telemetry.sanitizer import SampleQuality
from repro.telemetry.timeseries import TimeSeries
from repro.topology.elements import DirectionId


class TelemetryStore:
    """Accumulates per-direction monitoring samples.

    Samples should arrive in time order per direction; ties and regressions
    are dropped (counted in :attr:`dropped_samples`) instead of raising.
    The nominal sampling interval is inferred per direction from the
    smallest observed gap, so missed-poll holes do not skew it.
    """

    def __init__(self):
        self._corruption: Dict[DirectionId, List[float]] = {}
        self._congestion: Dict[DirectionId, List[float]] = {}
        self._utilization: Dict[DirectionId, List[float]] = {}
        self._times: Dict[DirectionId, List[float]] = {}
        self._quality: Dict[DirectionId, List[SampleQuality]] = {}
        #: Appends discarded for duplicate / backwards timestamps.
        self.dropped_samples: int = 0

    def append_rates(
        self,
        direction_id: DirectionId,
        time_s: float,
        corruption: float,
        congestion: float,
        utilization: float,
        quality: SampleQuality = SampleQuality.OK,
    ) -> bool:
        """Append one poll's derived rates for a direction.

        Returns:
            ``True`` when stored; ``False`` when the sample was dropped
            because its timestamp does not advance the series.
        """
        times = self._times.setdefault(direction_id, [])
        if times and time_s <= times[-1]:
            self.dropped_samples += 1
            return False
        times.append(time_s)
        self._corruption.setdefault(direction_id, []).append(corruption)
        self._congestion.setdefault(direction_id, []).append(congestion)
        self._utilization.setdefault(direction_id, []).append(utilization)
        self._quality.setdefault(direction_id, []).append(quality)
        return True

    # ------------------------------------------------------------------ #

    def directions(self) -> Iterator[DirectionId]:
        return iter(self._times.keys())

    def num_directions(self) -> int:
        return len(self._times)

    def _interval(self, direction_id: DirectionId) -> float:
        times = self._times[direction_id]
        if len(times) >= 2:
            # Smallest positive gap: robust against missed-poll holes.
            return min(b - a for a, b in zip(times, times[1:]))
        return 900.0

    def corruption_series(self, direction_id: DirectionId) -> TimeSeries:
        """Corruption loss-rate series of one direction."""
        return TimeSeries(
            self._corruption[direction_id],
            interval_s=self._interval(direction_id),
            start_s=self._times[direction_id][0] if self._times[direction_id] else 0.0,
        )

    def congestion_series(self, direction_id: DirectionId) -> TimeSeries:
        """Congestion loss-rate series of one direction."""
        return TimeSeries(
            self._congestion[direction_id],
            interval_s=self._interval(direction_id),
            start_s=self._times[direction_id][0] if self._times[direction_id] else 0.0,
        )

    def utilization_series(self, direction_id: DirectionId) -> TimeSeries:
        """Utilization series of one direction."""
        return TimeSeries(
            self._utilization[direction_id],
            interval_s=self._interval(direction_id),
            start_s=self._times[direction_id][0] if self._times[direction_id] else 0.0,
        )

    def times(self, direction_id: DirectionId) -> List[float]:
        """Sample timestamps of one direction (may contain gaps)."""
        return list(self._times.get(direction_id, []))

    def last_sample(
        self, direction_id: DirectionId
    ) -> Optional[Tuple[float, float, float, float, SampleQuality]]:
        """The most recent sample of a direction, or ``None``.

        Returns:
            ``(time_s, corruption, congestion, utilization, quality)``.
            O(1); the chaos loop polls this every tick.
        """
        times = self._times.get(direction_id)
        if not times:
            return None
        return (
            times[-1],
            self._corruption[direction_id][-1],
            self._congestion[direction_id][-1],
            self._utilization[direction_id][-1],
            self._quality[direction_id][-1],
        )

    def quality_series(self, direction_id: DirectionId) -> List[SampleQuality]:
        """Per-sample quality flags, aligned with the rate series."""
        return list(self._quality.get(direction_id, []))

    def quality_counts(
        self, direction_id: DirectionId
    ) -> Dict[SampleQuality, int]:
        """Histogram of sample quality for one direction."""
        counts: Dict[SampleQuality, int] = {}
        for q in self._quality.get(direction_id, []):
            counts[q] = counts.get(q, 0) + 1
        return counts

    def mean_rates(self, direction_id: DirectionId) -> Tuple[float, float]:
        """(mean corruption rate, mean congestion rate) for a direction."""
        return (
            self.corruption_series(direction_id).mean(),
            self.congestion_series(direction_id).mean(),
        )
