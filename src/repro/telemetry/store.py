"""In-memory telemetry store: per-direction loss-rate and utilization series.

The measurement analyses (§2–3) consume exactly three aligned series per
link direction: corruption loss rate, congestion loss rate, and utilization.
The store accumulates appends from the poller and exposes them as
:class:`~repro.telemetry.timeseries.TimeSeries`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.telemetry.timeseries import TimeSeries
from repro.topology.elements import DirectionId


class TelemetryStore:
    """Accumulates per-direction monitoring samples.

    Samples must be appended in time order per direction; the store infers
    the sampling interval from the first two appends.
    """

    def __init__(self):
        self._corruption: Dict[DirectionId, List[float]] = {}
        self._congestion: Dict[DirectionId, List[float]] = {}
        self._utilization: Dict[DirectionId, List[float]] = {}
        self._times: Dict[DirectionId, List[float]] = {}

    def append_rates(
        self,
        direction_id: DirectionId,
        time_s: float,
        corruption: float,
        congestion: float,
        utilization: float,
    ) -> None:
        """Append one poll's derived rates for a direction."""
        times = self._times.setdefault(direction_id, [])
        if times and time_s <= times[-1]:
            raise ValueError(
                f"samples must be time-ordered: {time_s} after {times[-1]}"
            )
        times.append(time_s)
        self._corruption.setdefault(direction_id, []).append(corruption)
        self._congestion.setdefault(direction_id, []).append(congestion)
        self._utilization.setdefault(direction_id, []).append(utilization)

    # ------------------------------------------------------------------ #

    def directions(self) -> Iterator[DirectionId]:
        return iter(self._times.keys())

    def num_directions(self) -> int:
        return len(self._times)

    def _interval(self, direction_id: DirectionId) -> float:
        times = self._times[direction_id]
        if len(times) >= 2:
            return times[1] - times[0]
        return 900.0

    def corruption_series(self, direction_id: DirectionId) -> TimeSeries:
        """Corruption loss-rate series of one direction."""
        return TimeSeries(
            self._corruption[direction_id],
            interval_s=self._interval(direction_id),
            start_s=self._times[direction_id][0] if self._times[direction_id] else 0.0,
        )

    def congestion_series(self, direction_id: DirectionId) -> TimeSeries:
        """Congestion loss-rate series of one direction."""
        return TimeSeries(
            self._congestion[direction_id],
            interval_s=self._interval(direction_id),
            start_s=self._times[direction_id][0] if self._times[direction_id] else 0.0,
        )

    def utilization_series(self, direction_id: DirectionId) -> TimeSeries:
        """Utilization series of one direction."""
        return TimeSeries(
            self._utilization[direction_id],
            interval_s=self._interval(direction_id),
            start_s=self._times[direction_id][0] if self._times[direction_id] else 0.0,
        )

    def mean_rates(self, direction_id: DirectionId) -> Tuple[float, float]:
        """(mean corruption rate, mean congestion rate) for a direction."""
        return (
            self.corruption_series(direction_id).mean(),
            self.congestion_series(direction_id).mean(),
        )
