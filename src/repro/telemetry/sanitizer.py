"""Telemetry sanitization: turning untrusted counter reads into rated samples.

§2 could only use the production SNMP feed after filtering ("we discard
counters that are obviously wrong"), and §8 notes that monitoring stops
flowing when a link is disabled.  This module is the defensive layer that
makes those realities explicit: raw :class:`~repro.telemetry.counters.
CounterSnapshot` deliveries — possibly missing, wrapped, reset, frozen,
duplicated, or out of order — are converted into per-direction loss-rate
samples that are *always* in [0, 1] and carry a :class:`SampleQuality`
flag, so downstream consumers (the controller above all) can tell trusted
data from reconstructed or suspect data.

Directions whose recent sample quality degrades past a threshold are
**quarantined**: the fail-safe controller refuses to disable links on
quarantined telemetry ("never disable on untrusted data").
"""

from __future__ import annotations

import enum
import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.telemetry.counters import CounterSnapshot
from repro.topology.elements import DirectionId, LinkId

#: Standard SNMP ifInErrors/ifOutDiscards width before 64-bit HC counters.
COUNTER_32BIT_MODULUS = 2**32

#: Optical power readings outside this window are physically implausible
#: for DCN transceivers (Table 2 symptoms live in roughly [-30, +5] dBm).
PLAUSIBLE_DBM_RANGE = (-40.0, 10.0)


class SampleQuality(enum.Enum):
    """Trust level of one derived telemetry sample."""

    OK = "ok"                      # clean diff of two in-order snapshots
    INTERPOLATED = "interpolated"  # value reconstructed (wrap unwrapped,
    #                                or averaged across a polling gap)
    SUSPECT = "suspect"            # reset/freeze/garbage detected; value
    #                                is a best-effort guess
    MISSING = "missing"            # the poll never arrived

    # Members are singletons, so identity hashing is equivalent to the
    # default name hash — but C-speed, which matters for the per-sample
    # set probes and count-dict keys on the sanitizer hot path.
    __hash__ = object.__hash__

    @property
    def degraded(self) -> bool:
        """Whether this sample should count against quarantine."""
        return self in _DEGRADED_QUALITIES


#: Membership here is the hot-path form of :attr:`SampleQuality.degraded`
#: (a frozenset probe skips the property descriptor on per-sample paths).
_DEGRADED_QUALITIES = frozenset(
    (SampleQuality.SUSPECT, SampleQuality.MISSING)
)


@dataclass
class SanitizedSample:
    """One per-direction sample after sanitization.

    Attributes:
        direction_id: The sampled link direction.
        time_s: Sample timestamp (delivery time for MISSING markers).
        corruption: Corruption loss rate, guaranteed in [0, 1].
        congestion: Congestion loss rate, guaranteed in [0, 1].
        utilization: Interval utilization, guaranteed in [0, 1].
        quality: Trust flag.
        note: Human-readable cause when quality is not OK.
    """

    direction_id: DirectionId
    time_s: float
    corruption: float = 0.0
    congestion: float = 0.0
    utilization: float = 0.0
    quality: SampleQuality = SampleQuality.OK
    note: str = ""


@dataclass
class SanitizerStats:
    """What the sanitizer saw and did (exact counters, never evicted)."""

    samples: int = 0
    missing: int = 0
    duplicates_dropped: int = 0
    out_of_order_dropped: int = 0
    wraps_unwrapped: int = 0
    resets_detected: int = 0
    freezes_detected: int = 0
    gaps_bridged: int = 0
    clamps: int = 0


def _finite(*values: float) -> bool:
    return all(math.isfinite(v) for v in values)


class TelemetrySanitizer:
    """Stateful per-direction snapshot sanitizer.

    Args:
        interval_s: Nominal polling interval (gap detection baseline).
        wrap_modulus: Counter width; deltas are unwrapped modulo this when
            a wrap is the plausible explanation for a backwards counter.
        window: Number of recent samples considered for quarantine.
        quarantine_threshold: Quarantine a direction when the fraction of
            degraded (SUSPECT/MISSING) samples in the window reaches this.
        min_window_samples: Quarantine needs at least this many samples in
            the window (a single bad first sample should not quarantine).
        obs: Observability recorder; every rated sample bumps a
            per-quality counter and quarantine enter/leave transitions are
            counted and emitted as events (no-op by default).
    """

    def __init__(
        self,
        interval_s: float = 900.0,
        wrap_modulus: int = COUNTER_32BIT_MODULUS,
        window: int = 8,
        quarantine_threshold: float = 0.5,
        min_window_samples: int = 3,
        obs: Recorder = NULL_RECORDER,
    ):
        if not 0.0 < quarantine_threshold <= 1.0:
            raise ValueError("quarantine threshold outside (0, 1]")
        self.interval_s = interval_s
        self.wrap_modulus = wrap_modulus
        self.window = window
        self.quarantine_threshold = quarantine_threshold
        self.min_window_samples = min_window_samples
        self.obs = obs
        self.stats = SanitizerStats()
        self._prev: Dict[DirectionId, CounterSnapshot] = {}
        self._quality: Dict[DirectionId, Deque[SampleQuality]] = {}
        # Observability bookkeeping, only maintained while enabled: the
        # set of directions last seen quarantined (churn detection) and
        # batched per-quality sample counts (flushed at scrape time so the
        # per-sample hot path stays one dict increment).
        self._quarantined_dirs: set = set()
        self._quality_counts: Dict[SampleQuality, int] = {}

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    def _push_quality(
        self, direction_id: DirectionId, quality: SampleQuality
    ) -> None:
        window = self._quality.setdefault(
            direction_id, deque(maxlen=self.window)
        )
        window.append(quality)
        if self.obs.enabled:
            counts = self._quality_counts
            counts[quality] = counts.get(quality, 0) + 1
            # Quarantine can only *start* when the pushed sample is
            # degraded (a clean sample never raises the degraded fraction)
            # and only *end* when the direction was quarantined, so the
            # O(window) verdict is recomputed just for those cases.
            quarantined_dirs = self._quarantined_dirs
            was_quarantined = direction_id in quarantined_dirs
            if was_quarantined or quality in _DEGRADED_QUALITIES:
                now_quarantined = self.quarantined(direction_id)
                if now_quarantined != was_quarantined:
                    if now_quarantined:
                        quarantined_dirs.add(direction_id)
                    else:
                        quarantined_dirs.discard(direction_id)
                    self.obs.count(
                        "sanitizer_quarantine_transitions_total",
                        transition="enter" if now_quarantined else "leave",
                    )
                    self.obs.gauge(
                        "sanitizer_quarantined_directions",
                        len(quarantined_dirs),
                    )
                    self.obs.event(
                        "quarantine",
                        direction="->".join(direction_id),
                        entered=now_quarantined,
                    )

    def flush_obs_counts(self) -> None:
        """Emit the batched per-quality sample counts to the recorder."""
        if not self.obs.enabled:
            return
        counts = sorted(
            (quality.value, count)
            for quality, count in self._quality_counts.items()
        )
        for quality, count in counts:
            self.obs.count("sanitizer_samples_total", count, quality=quality)
        self._quality_counts.clear()

    def observe_missing(
        self, direction_id: DirectionId, time_s: float
    ) -> SanitizedSample:
        """Record that a poll for ``direction_id`` never arrived."""
        self.stats.missing += 1
        self._push_quality(direction_id, SampleQuality.MISSING)
        return SanitizedSample(
            direction_id=direction_id,
            time_s=time_s,
            quality=SampleQuality.MISSING,
            note="poll missed",
        )

    def ingest(
        self,
        direction_id: DirectionId,
        snapshot: CounterSnapshot,
        capacity_pkts_per_s: float = 0.0,
    ) -> Optional[SanitizedSample]:
        """Sanitize one delivered snapshot against the previous one.

        Returns:
            A rated sample, or ``None`` when the snapshot only seeds the
            baseline or must be discarded (duplicate / out-of-order).
        """
        if not _finite(
            float(snapshot.time_s),
            float(snapshot.total),
            float(snapshot.errors),
            float(snapshot.drops),
        ):
            # Garbage snapshot: count it, poison the window, keep baseline.
            self.stats.samples += 1
            self._push_quality(direction_id, SampleQuality.SUSPECT)
            return SanitizedSample(
                direction_id=direction_id,
                time_s=snapshot.time_s if math.isfinite(snapshot.time_s) else 0.0,
                quality=SampleQuality.SUSPECT,
                note="non-finite counter values",
            )

        previous = self._prev.get(direction_id)
        if previous is None:
            self._prev[direction_id] = snapshot
            return None  # first sample only seeds the diff baseline

        dt = snapshot.time_s - previous.time_s
        if dt == 0:
            self.stats.duplicates_dropped += 1
            self._push_quality(direction_id, SampleQuality.SUSPECT)
            return None
        if dt < 0:
            self.stats.out_of_order_dropped += 1
            self._push_quality(direction_id, SampleQuality.SUSPECT)
            return None

        self.stats.samples += 1
        quality = SampleQuality.OK
        note = ""

        d_total = snapshot.total - previous.total
        d_errors = snapshot.errors - previous.errors
        d_drops = snapshot.drops - previous.drops

        if d_total < 0 or d_errors < 0 or d_drops < 0:
            unwrapped_total = d_total % self.wrap_modulus
            plausible = self._counters_fit_modulus(
                previous, snapshot
            ) and self._wrap_plausible(
                unwrapped_total, dt, capacity_pkts_per_s
            )
            if plausible:
                # 32-bit wrap: unwrap every counter that went backwards.
                d_total = unwrapped_total
                d_errors %= self.wrap_modulus
                d_drops %= self.wrap_modulus
                quality = SampleQuality.INTERPOLATED
                note = "32-bit counter wrap unwrapped"
                self.stats.wraps_unwrapped += 1
            else:
                # Counter reset (switch reboot): the new reading restarts
                # from zero, so the post-boot values are the best estimate
                # of the interval's traffic.
                d_total = snapshot.total
                d_errors = snapshot.errors
                d_drops = snapshot.drops
                quality = SampleQuality.SUSPECT
                note = "counter reset detected"
                self.stats.resets_detected += 1
        elif d_total == 0 and capacity_pkts_per_s > 0:
            # No packet movement on a link that should carry traffic: a
            # frozen counter (or a genuinely silent interval — we cannot
            # tell, which is exactly why it is only SUSPECT).
            quality = SampleQuality.SUSPECT
            note = "frozen counters (no movement)"
            self.stats.freezes_detected += 1
        elif dt > 1.5 * self.interval_s and quality is SampleQuality.OK:
            # Rates derived across a polling gap are averages over the
            # whole gap, not one interval: usable but reconstructed.
            quality = SampleQuality.INTERPOLATED
            note = f"bridged {dt / self.interval_s:.1f}-interval gap"
            self.stats.gaps_bridged += 1

        corruption = self._ratio(d_errors, d_total)
        congestion = self._ratio(d_drops, d_total)
        utilization = 0.0
        if capacity_pkts_per_s > 0 and dt > 0:
            utilization = self._clamp(d_total / (capacity_pkts_per_s * dt))

        self._prev[direction_id] = snapshot
        self._push_quality(direction_id, quality)
        return SanitizedSample(
            direction_id=direction_id,
            time_s=snapshot.time_s,
            corruption=corruption,
            congestion=congestion,
            utilization=utilization,
            quality=quality,
            note=note,
        )

    def _counters_fit_modulus(
        self, previous: CounterSnapshot, snapshot: CounterSnapshot
    ) -> bool:
        """A wrap can only explain a backwards counter on a device whose
        counters actually live below the modulus; any observed value at or
        above it proves wider counters, making a reset the only remaining
        explanation."""
        m = self.wrap_modulus
        return all(
            v < m
            for v in (
                previous.total,
                previous.errors,
                previous.drops,
                snapshot.total,
                snapshot.errors,
                snapshot.drops,
            )
        )

    def _wrap_plausible(
        self, unwrapped_total: int, dt: float, capacity_pkts_per_s: float
    ) -> bool:
        """A wrap explains a backwards counter only if the unwrapped delta
        fits in the interval's physical capacity (with 2x slack)."""
        if capacity_pkts_per_s <= 0:
            # No capacity reference: accept the wrap when the unwrapped
            # delta is small relative to the modulus (a reset to near zero
            # instead produces a delta close to the full modulus minus the
            # pre-reset value, i.e. usually large).
            return unwrapped_total < self.wrap_modulus // 4
        return unwrapped_total <= 2.0 * capacity_pkts_per_s * dt

    def _ratio(self, numerator: int, denominator: int) -> float:
        if denominator <= 0:
            return 0.0
        value = numerator / denominator
        return self._clamp(value)

    def _clamp(self, value: float) -> float:
        if not math.isfinite(value):
            self.stats.clamps += 1
            return 0.0
        if value < 0.0 or value > 1.0:
            self.stats.clamps += 1
        return min(1.0, max(0.0, value))

    # ------------------------------------------------------------------ #
    # Quarantine
    # ------------------------------------------------------------------ #

    def recent_quality(
        self, direction_id: DirectionId
    ) -> Tuple[int, int]:
        """(degraded, total) sample counts in the direction's window."""
        window = self._quality.get(direction_id)
        if not window:
            return (0, 0)
        degraded = sum(1 for q in window if q in _DEGRADED_QUALITIES)
        return (degraded, len(window))

    def quarantined(self, direction_id: DirectionId) -> bool:
        """Whether the direction's recent telemetry is untrustworthy."""
        degraded, total = self.recent_quality(direction_id)
        if total < self.min_window_samples:
            return False
        return degraded / total >= self.quarantine_threshold

    def link_quarantined(self, link_id: LinkId) -> bool:
        """Whether either direction of a link is quarantined."""
        a, b = link_id
        return self.quarantined((a, b)) or self.quarantined((b, a))

    def quarantined_directions(self) -> int:
        """How many directions are currently quarantined."""
        return sum(1 for did in self._quality if self.quarantined(did))

    def forget(self, direction_id: DirectionId) -> None:
        """Drop the diff baseline for a direction (e.g. after re-cabling).

        The quality window is kept: trust must be re-earned, not reset.
        """
        self._prev.pop(direction_id, None)


def optical_reading_plausible(reading) -> bool:
    """Whether every power field of an optical reading is physically sane.

    Garbage optics (NaN from a dead DOM sensor, absurd dBm from a firmware
    bug) must not reach Algorithm 1, which compares power levels against
    per-technology thresholds.
    """
    low, high = PLAUSIBLE_DBM_RANGE
    fields = (
        reading.tx_lower_dbm,
        reading.rx_lower_dbm,
        reading.tx_upper_dbm,
        reading.rx_upper_dbm,
    )
    return all(math.isfinite(v) and low <= v <= high for v in fields)
