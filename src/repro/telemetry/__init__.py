"""SNMP-style monitoring substrate (§2's measurement apparatus).

- :class:`~repro.telemetry.counters.DirectionCounters` — cumulative
  total/error/drop counters per link direction;
- :class:`~repro.telemetry.poller.SnmpPoller` — 15-minute polling loop;
- :class:`~repro.telemetry.store.TelemetryStore` — per-direction series;
- :class:`~repro.telemetry.timeseries.TimeSeries` — the reductions the
  paper's figures use (CV, Pearson, daily sums, CDFs).
"""

from repro.telemetry.counters import CounterSnapshot, DirectionCounters
from repro.telemetry.poller import POLL_INTERVAL_S, OpticalReading, SnmpPoller
from repro.telemetry.sanitizer import (
    COUNTER_32BIT_MODULUS,
    SampleQuality,
    SanitizedSample,
    SanitizerStats,
    TelemetrySanitizer,
    optical_reading_plausible,
)
from repro.telemetry.store import TelemetryStore
from repro.telemetry.timeseries import TimeSeries, cdf_points, percentile

__all__ = [
    "COUNTER_32BIT_MODULUS",
    "CounterSnapshot",
    "DirectionCounters",
    "OpticalReading",
    "POLL_INTERVAL_S",
    "SampleQuality",
    "SanitizedSample",
    "SanitizerStats",
    "SnmpPoller",
    "TelemetrySanitizer",
    "TelemetryStore",
    "TimeSeries",
    "cdf_points",
    "optical_reading_plausible",
    "percentile",
]
