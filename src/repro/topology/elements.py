"""Basic elements of a staged data center network topology.

The paper studies multi-tier Clos networks (§5): switches are arranged in
*stages*, with stage 0 being the top-of-rack (ToR) layer and the highest
stage being the *spine*.  Every inter-switch link connects a switch at some
stage ``s`` to a switch at stage ``s + 1``; valley-free routing goes up from
a ToR to the spine and back down.

Links are physically bidirectional but corruption is *asymmetric* (§3): the
two directions of a link corrupt independently, and mitigation disables both
directions together because "current hardware and software does not allow
unidirectional links" (§3, footnote 3).  We therefore model a link as one
object with two :class:`Direction` channels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Canonical identifier of a link: ``(lower_switch_name, upper_switch_name)``
#: where *lower* is the endpoint at the smaller stage number.
LinkId = Tuple[str, str]

#: Identifier of one direction of a link: ``(src_switch, dst_switch)``.
DirectionId = Tuple[str, str]


class Direction(enum.Enum):
    """One of the two directions of a physical link.

    ``UP`` carries traffic from the lower-stage switch toward the spine;
    ``DOWN`` carries traffic toward the ToRs.
    """

    UP = "up"
    DOWN = "down"

    def reverse(self) -> "Direction":
        """Return the opposite direction."""
        return Direction.DOWN if self is Direction.UP else Direction.UP


class LinkState(enum.Enum):
    """Administrative state of a link.

    ``ENABLED``  — carrying traffic.
    ``DISABLED`` — turned off by the mitigation system, awaiting repair.
    ``DRAINED``  — §8 extension: traffic removed (high routing cost) but the
    link stays up so optical monitoring continues and test traffic can verify
    a repair.
    """

    ENABLED = "enabled"
    DISABLED = "disabled"
    DRAINED = "drained"


@dataclass
class Switch:
    """A switch in the DCN.

    Attributes:
        name: Globally unique switch name (e.g. ``"pod0/agg2"``).
        stage: Stage index; 0 is the ToR layer, the maximum is the spine.
        pod: Optional pod label for pod-structured topologies.
        deep_buffer: Whether the switch has deep buffers.  §3 notes stages
            built from deep-buffer switches see far fewer congestion losses;
            the congestion substrate honours this flag.
        num_ports: Optional port-count bound used by validation.
    """

    name: str
    stage: int
    pod: Optional[str] = None
    deep_buffer: bool = False
    num_ports: Optional[int] = None

    def is_tor(self) -> bool:
        """Whether this switch is a top-of-rack switch (stage 0)."""
        return self.stage == 0


@dataclass
class Link:
    """A physical, optical switch-to-switch link.

    The canonical identity orders the endpoints by stage:
    ``lower`` is at stage ``s``, ``upper`` at stage ``s + 1``.

    Attributes:
        lower: Name of the lower-stage endpoint.
        upper: Name of the upper-stage endpoint.
        state: Administrative state (see :class:`LinkState`).
        capacity_gbps: Nominal speed, used by the congestion substrate.
        breakout_group: Optional identifier of the breakout cable this link
            belongs to (§4, root cause 5: a faulty breakout cable corrupts
            all of its member links together).
        corruption_rate: Per-direction corruption loss rate, keyed by
            :class:`Direction`.  Zero when the direction is healthy.  §3:
            corruption is stable over time, so a scalar per direction is the
            natural representation; time variation comes from the fault and
            telemetry layers.
        lg_capable: Whether the port pair supports LinkGuardian-style
            link-local retransmission (SIGCOMM'23).  Capability is a
            hardware property of the port, set per scenario via
            :meth:`~repro.topology.graph.Topology.assign_lg_capable`.
        lg_protected: Whether link-local protection is currently active.
            A protected link stays ENABLED — it keeps carrying traffic —
            but corrupts at ``lg_effective_loss`` instead of its raw rate
            and delivers only ``lg_capacity_fraction`` of its capacity
            (retransmissions consume bandwidth).
        lg_effective_loss: Post-retransmission loss rate while protected.
        lg_capacity_fraction: Fraction of nominal capacity delivered
            while protected (1.0 when unprotected).
    """

    lower: str
    upper: str
    state: LinkState = LinkState.ENABLED
    capacity_gbps: float = 40.0
    breakout_group: Optional[str] = None
    corruption_rate: Dict[Direction, float] = field(
        default_factory=lambda: {Direction.UP: 0.0, Direction.DOWN: 0.0}
    )
    lg_capable: bool = False
    lg_protected: bool = False
    lg_effective_loss: float = 0.0
    lg_capacity_fraction: float = 1.0

    @property
    def link_id(self) -> LinkId:
        """Canonical ``(lower, upper)`` identifier."""
        return (self.lower, self.upper)

    @property
    def enabled(self) -> bool:
        """Whether the link carries regular traffic."""
        return self.state is LinkState.ENABLED

    def max_corruption_rate(self) -> float:
        """Worst corruption rate across the two directions.

        Mitigation decisions key off the worse direction because disabling
        is all-or-nothing (§3 footnote 3).
        """
        return max(self.corruption_rate.values())

    def effective_corruption_rate(self) -> float:
        """Corruption rate as experienced by traffic.

        Equal to :meth:`max_corruption_rate` normally; while LinkGuardian
        protection is active the link delivers the (far lower) residual
        loss rate of the retransmission layer instead.
        """
        if self.lg_protected:
            return self.lg_effective_loss
        return self.max_corruption_rate()

    def effective_capacity_fraction(self) -> float:
        """Fraction of nominal capacity this link contributes to paths.

        0.0 when not enabled; ``lg_capacity_fraction`` while protected
        (retransmissions steal bandwidth); 1.0 otherwise.
        """
        if not self.enabled:
            return 0.0
        if self.lg_protected:
            return self.lg_capacity_fraction
        return 1.0

    def is_corrupting(self, threshold: float = 1e-8) -> bool:
        """Whether either direction corrupts above ``threshold``.

        The paper conservatively deems a link lossy at loss rate 1e-8
        (§3, footnote 2: the IEEE 802.3 floor), while operators typically
        act around 1e-6.
        """
        return self.max_corruption_rate() >= threshold

    def direction_id(self, direction: Direction) -> DirectionId:
        """The ``(src, dst)`` pair for ``direction``."""
        if direction is Direction.UP:
            return (self.lower, self.upper)
        return (self.upper, self.lower)


def canonical_link_id(a: str, b: str, stage_of: Dict[str, int]) -> LinkId:
    """Order endpoints ``a``/``b`` into a canonical :data:`LinkId`.

    Args:
        a: One endpoint name.
        b: The other endpoint name.
        stage_of: Mapping from switch name to stage index.

    Returns:
        ``(lower, upper)`` with ``stage(lower) + 1 == stage(upper)``.

    Raises:
        ValueError: If the endpoints are not at adjacent stages.
    """
    sa, sb = stage_of[a], stage_of[b]
    if abs(sa - sb) != 1:
        raise ValueError(
            f"link {a!r} (stage {sa}) -- {b!r} (stage {sb}) does not connect "
            "adjacent stages; Clos links must span exactly one stage"
        )
    return (a, b) if sa < sb else (b, a)
