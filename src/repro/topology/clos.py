"""Builders for generalized Clos topologies.

The paper's DCNs are standard multi-tier Clos designs (§2: "the data centers
that we study use standard designs").  We provide:

- :func:`build_clos` — a pod-structured three-stage Clos
  (ToR → aggregation → spine), the shape used throughout §5 and §7;
- :func:`build_multi_tier` — an arbitrary-depth staged Clos for studying
  the ``r``-tier generalization of the switch-local bound
  ``sc = c ** (1/r)``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.topology.elements import Switch
from repro.topology.graph import Topology


def build_clos(
    num_pods: int,
    tors_per_pod: int,
    aggs_per_pod: int,
    num_spines: int,
    mesh_spine: bool = False,
    name: str = "clos",
) -> Topology:
    """Build a three-stage, pod-structured Clos network.

    Each ToR connects to every aggregation switch in its pod.  Spine wiring
    follows the fat-tree plane convention: the spine is split into
    ``aggs_per_pod`` groups, and aggregation switch ``i`` of every pod
    connects to every spine in group ``i``.  With ``mesh_spine=True`` every
    aggregation switch instead connects to every spine (a folded-Clos mesh).

    Args:
        num_pods: Number of pods.
        tors_per_pod: ToR switches per pod.
        aggs_per_pod: Aggregation switches per pod.
        num_spines: Total spine switches.  When ``mesh_spine`` is false it
            must be divisible by ``aggs_per_pod``.
        mesh_spine: Use full agg-to-spine mesh instead of plane wiring.
        name: Topology name.

    Returns:
        The constructed :class:`~repro.topology.graph.Topology`.
    """
    if min(num_pods, tors_per_pod, aggs_per_pod, num_spines) < 1:
        raise ValueError("all Clos dimensions must be >= 1")
    if not mesh_spine and num_spines % aggs_per_pod != 0:
        raise ValueError(
            f"num_spines={num_spines} must be divisible by "
            f"aggs_per_pod={aggs_per_pod} for plane wiring"
        )

    topo = Topology(num_stages=3, name=name)
    spine_names = [f"spine{s}" for s in range(num_spines)]
    for spine in spine_names:
        topo.add_switch(Switch(spine, stage=2))

    group_size = num_spines // aggs_per_pod if not mesh_spine else num_spines

    for pod in range(num_pods):
        pod_label = f"pod{pod}"
        agg_names = [f"{pod_label}/agg{a}" for a in range(aggs_per_pod)]
        for agg in agg_names:
            topo.add_switch(Switch(agg, stage=1, pod=pod_label))
        for t in range(tors_per_pod):
            tor = f"{pod_label}/tor{t}"
            topo.add_switch(Switch(tor, stage=0, pod=pod_label))
            for agg in agg_names:
                topo.add_link(tor, agg)
        for a, agg in enumerate(agg_names):
            if mesh_spine:
                targets = spine_names
            else:
                targets = spine_names[a * group_size : (a + 1) * group_size]
            for spine in targets:
                topo.add_link(agg, spine)
    return topo


def build_multi_tier(
    stage_sizes: Sequence[int],
    uplinks_per_switch: Sequence[int],
    name: str = "multi-tier",
) -> Topology:
    """Build a staged Clos of arbitrary depth.

    Stage ``s`` switches each get ``uplinks_per_switch[s]`` uplinks, spread
    round-robin over the stage-``s+1`` switches.  This produces regular,
    balanced topologies suitable for studying how the switch-local bound
    degrades with depth (§5.1: ``r``-tier networks need ``sc = c**(1/r)``).

    Args:
        stage_sizes: Number of switches per stage, ToR first.
        uplinks_per_switch: Uplink count per switch for every stage except
            the spine; must have ``len(stage_sizes) - 1`` entries.
        name: Topology name.

    Returns:
        The constructed topology.
    """
    if len(stage_sizes) < 2:
        raise ValueError("need at least two stages")
    if len(uplinks_per_switch) != len(stage_sizes) - 1:
        raise ValueError(
            "uplinks_per_switch must have one entry per non-spine stage"
        )

    topo = Topology(num_stages=len(stage_sizes), name=name)
    names: List[List[str]] = []
    labels = ["tor", "agg", "core", "spine"]
    for stage, size in enumerate(stage_sizes):
        label = labels[stage] if stage < len(labels) else f"t{stage}"
        if stage == len(stage_sizes) - 1:
            label = "spine"
        stage_names = [f"{label}{i}" for i in range(size)]
        for sw in stage_names:
            topo.add_switch(Switch(sw, stage=stage))
        names.append(stage_names)

    for stage in range(len(stage_sizes) - 1):
        above = names[stage + 1]
        fanout = uplinks_per_switch[stage]
        if fanout > len(above):
            raise ValueError(
                f"stage {stage} wants {fanout} uplinks but stage "
                f"{stage + 1} has only {len(above)} switches"
            )
        for i, sw in enumerate(names[stage]):
            for k in range(fanout):
                topo.add_link(sw, above[(i + k) % len(above)])
    return topo
