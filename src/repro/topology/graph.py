"""The :class:`Topology` container: a staged multi-tier DCN graph.

This is the substrate every CorrOpt algorithm operates on.  It keeps

- switches grouped by stage (stage 0 = ToR, highest stage = spine),
- links in canonical ``(lower, upper)`` form,
- uplink/downlink adjacency for O(1) neighborhood queries, and
- administrative link state (enabled / disabled / drained).

The class deliberately exposes *sets of disabled links* rather than mutating
structure, so the optimizer can evaluate hypothetical disable-sets cheaply.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.topology.elements import (
    Direction,
    Link,
    LinkId,
    LinkState,
    Switch,
    canonical_link_id,
)


class Topology:
    """A staged, multi-tier data center network.

    Example:
        >>> topo = Topology(num_stages=3)
        >>> topo.add_switch(Switch("t0", stage=0))
        >>> topo.add_switch(Switch("a0", stage=1))
        >>> topo.add_switch(Switch("s0", stage=2))
        >>> topo.add_link("t0", "a0")
        ('t0', 'a0')
        >>> topo.add_link("a0", "s0")
        ('a0', 's0')
        >>> topo.num_links
        2
    """

    def __init__(self, num_stages: int, name: str = "dcn"):
        if num_stages < 2:
            raise ValueError("a DCN needs at least a ToR stage and a spine stage")
        self.name = name
        self.num_stages = num_stages
        self._switches: Dict[str, Switch] = {}
        self._links: Dict[LinkId, Link] = {}
        self._stages: List[List[str]] = [[] for _ in range(num_stages)]
        self._uplinks: Dict[str, List[LinkId]] = {}
        self._downlinks: Dict[str, List[LinkId]] = {}
        # Observers.  Admin listeners fire whenever a link's *effective*
        # enabled-ness flips (enable/disable/drain through the methods
        # below); structure listeners fire on add_switch/add_link.  This is
        # what lets PathCounter maintain its DP incrementally instead of
        # recounting the topology on every query.
        self._admin_listeners: List[Callable[[LinkId], None]] = []
        self._structure_listeners: List[Callable[[], None]] = []
        # LinkGuardian bookkeeping.  ``_lg_version`` bumps whenever any
        # link's protection status or capability changes, so consumers
        # (PathCounter's effective-capacity DP) can memoize against it the
        # same way they memoize against admin-state versions.
        self._lg_version = 0
        self._lg_protected: Set[LinkId] = set()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_switch(self, switch: Switch) -> None:
        """Add a switch; its stage must fit within ``num_stages``."""
        if switch.name in self._switches:
            raise ValueError(f"duplicate switch {switch.name!r}")
        if not 0 <= switch.stage < self.num_stages:
            raise ValueError(
                f"switch {switch.name!r} stage {switch.stage} outside "
                f"[0, {self.num_stages})"
            )
        self._switches[switch.name] = switch
        self._stages[switch.stage].append(switch.name)
        self._uplinks[switch.name] = []
        self._downlinks[switch.name] = []
        self._notify_structure()

    def add_link(
        self,
        a: str,
        b: str,
        capacity_gbps: float = 40.0,
        breakout_group: Optional[str] = None,
    ) -> LinkId:
        """Add a link between switches at adjacent stages.

        Returns:
            The canonical :data:`LinkId`.
        """
        stage_of = {a: self._switches[a].stage, b: self._switches[b].stage}
        link_id = canonical_link_id(a, b, stage_of)
        if link_id in self._links:
            raise ValueError(f"duplicate link {link_id}")
        lower, upper = link_id
        link = Link(
            lower=lower,
            upper=upper,
            capacity_gbps=capacity_gbps,
            breakout_group=breakout_group,
        )
        self._links[link_id] = link
        self._uplinks[lower].append(link_id)
        self._downlinks[upper].append(link_id)
        self._notify_structure()
        return link_id

    # ------------------------------------------------------------------ #
    # Observers
    # ------------------------------------------------------------------ #

    def subscribe_admin_changes(
        self, callback: Callable[[LinkId], None]
    ) -> None:
        """Register ``callback(link_id)`` for effective link-state flips.

        The callback fires *after* the state change, and only when the
        link's ``enabled`` property actually flipped (e.g. DISABLED →
        DRAINED does not fire).  :class:`~repro.core.path_counting.PathCounter`
        uses this to keep its path counts live.
        """
        self._admin_listeners.append(callback)

    def unsubscribe_admin_changes(
        self, callback: Callable[[LinkId], None]
    ) -> None:
        """Remove a previously registered admin-change callback."""
        if callback in self._admin_listeners:
            self._admin_listeners.remove(callback)

    def subscribe_structure_changes(self, callback: Callable[[], None]) -> None:
        """Register ``callback()`` for switch/link additions."""
        self._structure_listeners.append(callback)

    def unsubscribe_structure_changes(
        self, callback: Callable[[], None]
    ) -> None:
        """Remove a previously registered structure-change callback."""
        if callback in self._structure_listeners:
            self._structure_listeners.remove(callback)

    def _notify_admin(self, link_id: LinkId) -> None:
        for callback in list(self._admin_listeners):
            callback(link_id)

    def _notify_structure(self) -> None:
        for callback in list(self._structure_listeners):
            callback()

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    @property
    def num_switches(self) -> int:
        return len(self._switches)

    @property
    def num_links(self) -> int:
        return len(self._links)

    def switch(self, name: str) -> Switch:
        """Look up a switch by name."""
        return self._switches[name]

    def has_switch(self, name: str) -> bool:
        return name in self._switches

    def link(self, link_id: LinkId) -> Link:
        """Look up a link by its canonical id."""
        return self._links[link_id]

    def has_link(self, link_id: LinkId) -> bool:
        return link_id in self._links

    def find_link(self, a: str, b: str) -> Link:
        """Look up a link by its endpoints in either order."""
        if (a, b) in self._links:
            return self._links[(a, b)]
        return self._links[(b, a)]

    def switches(self) -> Iterator[Switch]:
        """Iterate over all switches."""
        return iter(self._switches.values())

    def links(self) -> Iterator[Link]:
        """Iterate over all links."""
        return iter(self._links.values())

    def link_ids(self) -> Iterator[LinkId]:
        return iter(self._links.keys())

    def stage(self, index: int) -> List[str]:
        """Names of switches at stage ``index``."""
        return list(self._stages[index])

    def tors(self) -> List[str]:
        """Names of all top-of-rack switches (stage 0)."""
        return list(self._stages[0])

    def spines(self) -> List[str]:
        """Names of all spine switches (highest stage)."""
        return list(self._stages[-1])

    def uplinks(self, switch: str) -> List[LinkId]:
        """Link ids whose lower endpoint is ``switch``."""
        return list(self._uplinks[switch])

    def downlinks(self, switch: str) -> List[LinkId]:
        """Link ids whose upper endpoint is ``switch``."""
        return list(self._downlinks[switch])

    def enabled_uplinks(self, switch: str) -> List[LinkId]:
        """Enabled uplink ids of ``switch``."""
        return [lid for lid in self._uplinks[switch] if self._links[lid].enabled]

    def switch_links(self, switch: str) -> List[LinkId]:
        """All link ids (up and down) attached to ``switch``."""
        return self._uplinks[switch] + self._downlinks[switch]

    def tiers_above_tor(self) -> int:
        """Number of link tiers between the ToR stage and the spine.

        This is the ``r`` of §5.1: a switch-local checker needs to keep
        ``c ** (1 / r)`` of each switch's uplinks alive to guarantee a
        ToR-to-spine path fraction of ``c``.
        """
        return self.num_stages - 1

    # ------------------------------------------------------------------ #
    # Administrative state
    # ------------------------------------------------------------------ #

    def _set_link_state(self, link_id: LinkId, state: LinkState) -> None:
        link = self._links[link_id]
        if link.state is state:
            return
        flipped = link.enabled != (state is LinkState.ENABLED)
        link.state = state
        if flipped:
            self._notify_admin(link_id)

    def disable_link(self, link_id: LinkId) -> None:
        """Administratively disable a link (both directions; §3 fn. 3)."""
        self._set_link_state(link_id, LinkState.DISABLED)

    def enable_link(self, link_id: LinkId) -> None:
        """Re-enable a link after repair."""
        self._set_link_state(link_id, LinkState.ENABLED)

    def drain_link(self, link_id: LinkId) -> None:
        """§8 extension: remove traffic without turning the link off."""
        self._set_link_state(link_id, LinkState.DRAINED)

    def disabled_links(self) -> Set[LinkId]:
        """Ids of links not currently carrying traffic."""
        return {
            lid for lid, link in self._links.items() if not link.enabled
        }

    def corrupting_links(self, threshold: float = 1e-8) -> List[LinkId]:
        """Ids of *enabled* links corrupting above ``threshold``.

        These are the candidates the fast checker and optimizer reason
        about: disabled links are already mitigated.
        """
        return [
            lid
            for lid, link in self._links.items()
            if link.enabled and link.is_corrupting(threshold)
        ]

    def set_corruption(
        self, link_id: LinkId, rate: float, direction: Direction = Direction.UP
    ) -> None:
        """Set the corruption loss rate of one direction of a link."""
        if rate < 0 or rate > 1:
            raise ValueError(f"corruption rate {rate} outside [0, 1]")
        self._links[link_id].corruption_rate[direction] = rate

    def clear_corruption(self, link_id: LinkId) -> None:
        """Mark both directions of a link healthy (post-repair).

        Also drops any LinkGuardian protection: a healthy link has nothing
        to mask, so the invariant *protected ⟹ corrupting* holds.
        """
        link = self._links[link_id]
        link.corruption_rate[Direction.UP] = 0.0
        link.corruption_rate[Direction.DOWN] = 0.0
        if link.lg_protected:
            self.unprotect_link(link_id)

    # ------------------------------------------------------------------ #
    # LinkGuardian protection (SIGCOMM'23 rival strategy)
    # ------------------------------------------------------------------ #

    @property
    def lg_version(self) -> int:
        """Monotone counter bumped on any LG capability/protection change."""
        return self._lg_version

    def assign_lg_capable(self, coverage: float, salt: int = 0) -> int:
        """Mark a deterministic ``coverage`` fraction of links LG-capable.

        Capability is decided per link from a hash of its endpoint names
        (plus ``salt``), so the flagged set is independent of iteration
        order, stable across topology copies, and monotone in ``coverage``
        (raising coverage only adds links).  Re-assigning resets all
        capability flags first, so the call is idempotent.

        Returns:
            The number of links flagged capable.
        """
        if not 0.0 <= coverage <= 1.0:
            raise ValueError(f"lg coverage {coverage} outside [0, 1]")
        count = 0
        for link_id, link in self._links.items():
            token = f"lg:{salt}:{link_id[0]}|{link_id[1]}".encode("utf-8")
            digest = hashlib.sha256(token).digest()
            bucket = int.from_bytes(digest[:8], "big") / 2.0**64
            link.lg_capable = bucket < coverage
            if link.lg_capable:
                count += 1
            elif link.lg_protected:
                self.unprotect_link(link_id)
        self._lg_version += 1
        return count

    def set_lg_capable(self, link_id: LinkId, capable: bool) -> None:
        """Set one link's LG capability explicitly (tests, small setups)."""
        link = self._links[link_id]
        if link.lg_protected and not capable:
            self.unprotect_link(link_id)
        link.lg_capable = capable
        self._lg_version += 1

    def protect_link(
        self, link_id: LinkId, effective_loss: float, capacity_fraction: float
    ) -> None:
        """Activate LinkGuardian protection on an LG-capable, enabled link.

        The link stays ENABLED — no admin notification fires and the
        binary path-count DP is untouched — but its effective loss rate
        and effective capacity change.
        """
        link = self._links[link_id]
        if not link.lg_capable:
            raise ValueError(f"link {link_id} is not LG-capable")
        if not link.enabled:
            raise ValueError(f"link {link_id} is not enabled")
        if not 0.0 <= effective_loss <= 1.0:
            raise ValueError(f"effective loss {effective_loss} outside [0, 1]")
        if not 0.0 < capacity_fraction <= 1.0:
            raise ValueError(
                f"capacity fraction {capacity_fraction} outside (0, 1]"
            )
        link.lg_protected = True
        link.lg_effective_loss = effective_loss
        link.lg_capacity_fraction = capacity_fraction
        self._lg_protected.add(link_id)
        self._lg_version += 1

    def unprotect_link(self, link_id: LinkId) -> None:
        """Deactivate LinkGuardian protection (no-op if not protected)."""
        link = self._links[link_id]
        if not link.lg_protected:
            return
        link.lg_protected = False
        link.lg_effective_loss = 0.0
        link.lg_capacity_fraction = 1.0
        self._lg_protected.discard(link_id)
        self._lg_version += 1

    def lg_protected_links(self) -> Set[LinkId]:
        """Ids of links currently under LinkGuardian protection."""
        return set(self._lg_protected)

    def lg_capable_count(self) -> int:
        """Number of LG-capable links."""
        return sum(1 for link in self._links.values() if link.lg_capable)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #

    def downstream_switches(
        self, switch: str, disabled: Optional[Set[LinkId]] = None
    ) -> Set[str]:
        """All switches reachable going *down* from ``switch`` (inclusive).

        Args:
            switch: Starting switch.
            disabled: Extra links to treat as disabled during traversal, on
                top of administratively disabled ones.

        Used by the fast checker to find the ToRs whose path counts a
        hypothetical disable could affect.  Traversal crosses only enabled
        links: a ToR below a disabled link is unaffected by changes above it
        through that link.
        """
        disabled = disabled or set()
        seen = {switch}
        frontier = [switch]
        while frontier:
            current = frontier.pop()
            for lid in self._downlinks[current]:
                if lid in disabled or not self._links[lid].enabled:
                    continue
                below = self._links[lid].lower
                if below not in seen:
                    seen.add(below)
                    frontier.append(below)
        return seen

    def downstream_tors(
        self, switch: str, disabled: Optional[Set[LinkId]] = None
    ) -> Set[str]:
        """ToRs reachable going down from ``switch`` over enabled links."""
        return {
            name
            for name in self.downstream_switches(switch, disabled)
            if self._switches[name].stage == 0
        }

    def upstream_links(self, tors: Iterable[str]) -> Set[LinkId]:
        """All links on any up-path from the given ToRs to the spine.

        This is the "upstream of V" set of the optimizer's pruning step
        (§5.1, Figure 11): only disabling links in this set can affect the
        path counts of the ToRs in ``tors``.  Traversal ignores
        administrative state so that pruning stays valid regardless of what
        is currently disabled.
        """
        links: Set[LinkId] = set()
        seen: Set[str] = set()
        frontier = list(dict.fromkeys(tors))
        seen.update(frontier)
        while frontier:
            current = frontier.pop()
            for lid in self._uplinks[current]:
                links.add(lid)
                above = self._links[lid].upper
                if above not in seen:
                    seen.add(above)
                    frontier.append(above)
        return links

    def breakout_members(self, group: str) -> List[LinkId]:
        """Link ids belonging to breakout-cable ``group``."""
        return [
            lid
            for lid, link in self._links.items()
            if link.breakout_group == group
        ]

    # ------------------------------------------------------------------ #
    # Interop
    # ------------------------------------------------------------------ #

    def to_networkx(self):
        """Export to a :class:`networkx.Graph` (enabled links only).

        Node attribute ``stage`` and edge attribute ``corruption`` are set,
        which is convenient for ad-hoc analysis and plotting.
        """
        import networkx as nx

        graph = nx.Graph(name=self.name)
        for switch in self._switches.values():
            graph.add_node(switch.name, stage=switch.stage, pod=switch.pod)
        for link in self._links.values():
            if link.enabled:
                graph.add_edge(
                    link.lower,
                    link.upper,
                    corruption=link.max_corruption_rate(),
                    capacity=link.capacity_gbps,
                )
        return graph

    def copy(self) -> "Topology":
        """Deep copy (administrative state and corruption included)."""
        clone = Topology(self.num_stages, name=self.name)
        for switch in self._switches.values():
            clone.add_switch(
                Switch(
                    name=switch.name,
                    stage=switch.stage,
                    pod=switch.pod,
                    deep_buffer=switch.deep_buffer,
                    num_ports=switch.num_ports,
                )
            )
        for link in self._links.values():
            clone.add_link(
                link.lower,
                link.upper,
                capacity_gbps=link.capacity_gbps,
                breakout_group=link.breakout_group,
            )
            new = clone.link(link.link_id)
            new.state = link.state
            new.corruption_rate = dict(link.corruption_rate)
            new.lg_capable = link.lg_capable
            new.lg_protected = link.lg_protected
            new.lg_effective_loss = link.lg_effective_loss
            new.lg_capacity_fraction = link.lg_capacity_fraction
            if link.lg_protected:
                clone._lg_protected.add(link.link_id)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology({self.name!r}, stages={self.num_stages}, "
            f"switches={self.num_switches}, links={self.num_links})"
        )
