"""k-ary fat-tree builder.

A fat-tree is the special case of a Clos used by the Appendix-A
NP-completeness reduction ("Consider a 4k-Fat-Tree ...").  We follow the
classic construction: ``k`` pods, each with ``k/2`` edge (ToR) switches and
``k/2`` aggregation switches; ``(k/2)**2`` core switches arranged into
``k/2`` planes; aggregation switch ``i`` of every pod connects to all cores
of plane ``i``.
"""

from __future__ import annotations

from repro.topology.elements import Switch
from repro.topology.graph import Topology


def build_fattree(k: int, name: str = "fat-tree") -> Topology:
    """Build a ``k``-ary fat-tree (``k`` even, ``k >= 2``).

    Stage assignment: edge switches are stage 0 (ToRs), aggregation stage 1,
    core (spine) stage 2.

    Args:
        k: Fat-tree arity; must be even.
        name: Topology name.

    Returns:
        A topology with ``k`` pods, ``k*k/2`` ToRs, ``k*k/2`` aggregation
        switches, ``(k/2)**2`` cores, and ``k**3 / 2`` switch-to-switch
        links.
    """
    if k < 2 or k % 2 != 0:
        raise ValueError(f"fat-tree arity must be even and >= 2, got {k}")
    half = k // 2
    topo = Topology(num_stages=3, name=name)

    core_names = [
        [f"core{plane}_{i}" for i in range(half)] for plane in range(half)
    ]
    for plane in core_names:
        for core in plane:
            topo.add_switch(Switch(core, stage=2))

    for pod in range(k):
        pod_label = f"pod{pod}"
        aggs = [f"{pod_label}/agg{a}" for a in range(half)]
        edges = [f"{pod_label}/edge{e}" for e in range(half)]
        for agg in aggs:
            topo.add_switch(Switch(agg, stage=1, pod=pod_label))
        for edge in edges:
            topo.add_switch(Switch(edge, stage=0, pod=pod_label))
        for edge in edges:
            for agg in aggs:
                topo.add_link(edge, agg)
        for a, agg in enumerate(aggs):
            for core in core_names[a]:
                topo.add_link(agg, core)
    return topo
