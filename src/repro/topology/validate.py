"""Structural validation of staged topologies.

CorrOpt's path-counting DP assumes a well-formed staged Clos: links only
between adjacent stages (guaranteed by construction), every non-spine switch
has at least one uplink, and every ToR can reach the spine.  Validation
failures raise :class:`TopologyError` with an explanatory message.
"""

from __future__ import annotations

from typing import List

from repro.topology.graph import Topology


class TopologyError(ValueError):
    """A topology violates the structural assumptions of the algorithms."""


def validate(topo: Topology) -> None:
    """Validate structural invariants; raise :class:`TopologyError` if broken.

    Checks:
        - every stage is non-empty;
        - every non-spine switch has at least one uplink (else it could
          never reach the spine even with all links healthy);
        - every ToR reaches the spine over enabled links.
    """
    problems: List[str] = []
    for stage in range(topo.num_stages):
        if not topo.stage(stage):
            problems.append(f"stage {stage} has no switches")

    for switch in topo.switches():
        if switch.stage < topo.num_stages - 1 and not topo.uplinks(switch.name):
            problems.append(f"switch {switch.name!r} has no uplinks")

    if not problems:
        for tor in topo.tors():
            if not _reaches_spine(topo, tor):
                problems.append(
                    f"ToR {tor!r} cannot reach the spine over enabled links"
                )

    if problems:
        raise TopologyError("; ".join(problems))


def _reaches_spine(topo: Topology, tor: str) -> bool:
    """Whether ``tor`` has at least one enabled up-path to the spine."""
    top = topo.num_stages - 1
    frontier = [tor]
    seen = {tor}
    while frontier:
        current = frontier.pop()
        if topo.switch(current).stage == top:
            return True
        for lid in topo.enabled_uplinks(current):
            upper = topo.link(lid).upper
            if upper not in seen:
                seen.add(upper)
                frontier.append(upper)
    return False


def is_connected_to_spine(topo: Topology, tor: str) -> bool:
    """Public wrapper: does ``tor`` have an enabled valley-free spine path?"""
    return _reaches_spine(topo, tor)
