"""Randomized / degraded topology generation for tests and stress runs.

The optimizer and fast checker must behave on *degraded* networks (links
already disabled) and on irregular Clos variants (heterogeneous pod sizes,
missing links).  These generators build such cases deterministically from a
seed.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.topology.clos import build_clos
from repro.topology.graph import Topology


def build_irregular_clos(
    seed: int = 0,
    num_pods: int = 4,
    max_tors_per_pod: int = 6,
    max_aggs_per_pod: int = 4,
    num_spines: int = 8,
) -> Topology:
    """Build a pod Clos with per-pod random sizes and random missing links.

    The result is always valid (every ToR reaches the spine), but pods vary
    in width and a few agg-spine links are absent, which exercises the
    non-uniform path counts that make switch-local checking sub-optimal.
    """
    rng = random.Random(seed)
    from repro.topology.elements import Switch

    topo = Topology(num_stages=3, name=f"irregular-{seed}")
    spines = [f"spine{s}" for s in range(num_spines)]
    for spine in spines:
        topo.add_switch(Switch(spine, stage=2))

    for pod in range(num_pods):
        pod_label = f"pod{pod}"
        num_aggs = rng.randint(2, max_aggs_per_pod)
        num_tors = rng.randint(2, max_tors_per_pod)
        aggs = [f"{pod_label}/agg{a}" for a in range(num_aggs)]
        for agg in aggs:
            topo.add_switch(Switch(agg, stage=1, pod=pod_label))
        for t in range(num_tors):
            tor = f"{pod_label}/tor{t}"
            topo.add_switch(Switch(tor, stage=0, pod=pod_label))
            for agg in aggs:
                topo.add_link(tor, agg)
        for agg in aggs:
            # Every agg keeps at least two spine uplinks; the rest appear
            # with probability 0.7 to create irregular path counts.
            chosen = rng.sample(spines, 2)
            for spine in spines:
                if spine in chosen or rng.random() < 0.7:
                    topo.add_link(agg, spine)
    return topo


def degrade(
    topo: Topology,
    disable_fraction: float = 0.05,
    rng: Optional[random.Random] = None,
) -> Topology:
    """Disable a random fraction of links, keeping every ToR connected.

    Mirrors the "degraded Fat-Tree" setting of Lemma A.1.  Links whose
    removal would disconnect a ToR from the spine are skipped.
    """
    from repro.topology.validate import is_connected_to_spine

    rng = rng or random.Random(0)
    candidates = list(topo.link_ids())
    rng.shuffle(candidates)
    target = int(len(candidates) * disable_fraction)
    disabled = 0
    for lid in candidates:
        if disabled >= target:
            break
        topo.disable_link(lid)
        lower = topo.link(lid).lower
        tors = (
            [lower]
            if topo.switch(lower).stage == 0
            else sorted(topo.downstream_tors(lower))
        )
        if all(is_connected_to_spine(topo, tor) for tor in tors):
            disabled += 1
        else:
            topo.enable_link(lid)
    return topo


def sprinkle_corruption(
    topo: Topology,
    fraction: float = 0.02,
    rng: Optional[random.Random] = None,
    min_rate: float = 1e-7,
    max_rate: float = 1e-2,
) -> int:
    """Mark a random fraction of enabled links as corrupting.

    Rates are log-uniform in ``[min_rate, max_rate]``, matching the
    heavy-tailed bucket distribution of Table 1.

    Returns:
        The number of links marked corrupting.
    """
    import math

    rng = rng or random.Random(0)
    count = 0
    for link in topo.links():
        if link.enabled and rng.random() < fraction:
            log_rate = rng.uniform(math.log10(min_rate), math.log10(max_rate))
            topo.set_corruption(link.link_id, 10 ** log_rate)
            count += 1
    return count
