"""Columnar (numpy) topology representation and vectorized path counting.

The paper's study spans ~350K optical links across 15 DCNs (§2).  The
object :class:`~repro.topology.graph.Topology` is the right substrate for
the mitigation algorithms — per-link Python objects, observer hooks, an
incremental DP — but it is the wrong substrate for fleet-scale footprints:
350K ``Link`` instances cost hundreds of megabytes and minutes of pure
Python to build and recount.

:class:`ColumnarTopology` stores the same information as parallel numpy
arrays: switch and link identities are interned to ``int32`` indexes
(index == insertion order, so the object round-trip reproduces iteration
order exactly, which is what keeps simulations byte-identical), and every
per-element attribute (stage, pod, state, capacity, corruption rates, the
LinkGuardian fields) is one array.  The representation is

- **lossless**: ``from_topology`` → ``to_topology`` reproduces the object
  graph exactly, administrative state and LG protection included;
- **flat**: :meth:`ColumnarTopology.arrays` exposes the whole topology as
  a dict of contiguous arrays (string tables become UTF-8 blobs plus
  offset arrays), which is the basis of both the ``.npz`` binary format
  (:mod:`repro.topology.serialization`) and the shared-memory scenario
  transport (:mod:`repro.parallel.shm`);
- **fast to build**: :meth:`ColumnarTopology.build_clos` constructs the
  paper's plane-wired Clos directly in array space — a 350K-link fleet
  member builds in well under a second instead of tens of seconds.

:class:`ColumnarPathCounter` is the valley-free DP of §5.1 as array ops:
one vectorized scatter-add pass per stage, so a *full* recount of a
350K-link DCN costs milliseconds.  It answers the same queries as
:class:`~repro.core.path_counting.PathCounter` (counts, ToR fractions,
worst/average aggregates — the average in exact rational arithmetic, so
the two agree bit-for-bit) and can be bound live to an object topology
for drop-in use.
"""

from __future__ import annotations

import hashlib
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.topology.elements import (
    Direction,
    LinkId,
    LinkState,
    Switch,
)
from repro.topology.graph import Topology

#: Bumped when the array layout changes incompatibly.
COLUMNAR_FORMAT_VERSION = 1

#: ``LinkState`` interning for the ``link_state`` int8 column.
_STATE_TO_CODE = {
    LinkState.ENABLED: 0,
    LinkState.DISABLED: 1,
    LinkState.DRAINED: 2,
}
_CODE_TO_STATE = {code: state for state, code in _STATE_TO_CODE.items()}

#: Field order of :meth:`ColumnarTopology.arrays` — fixed so digests and
#: shared-memory layouts are stable.
ARRAY_FIELDS = (
    "switch_blob",
    "switch_offsets",
    "switch_stage",
    "switch_pod",
    "switch_deep_buffer",
    "switch_num_ports",
    "pod_blob",
    "pod_offsets",
    "link_lower",
    "link_upper",
    "link_state",
    "link_capacity",
    "link_breakout",
    "breakout_blob",
    "breakout_offsets",
    "corruption_up",
    "corruption_down",
    "lg_capable",
    "lg_protected",
    "lg_effective_loss",
    "lg_capacity_fraction",
)


def _encode_strings(strings: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
    """UTF-8 blob + offsets encoding of a string table.

    ``offsets`` has ``len(strings) + 1`` entries; string ``i`` occupies
    ``blob[offsets[i]:offsets[i + 1]]``.
    """
    encoded = [s.encode("utf-8") for s in strings]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    if encoded:
        np.cumsum([len(b) for b in encoded], out=offsets[1:])
    blob = np.frombuffer(b"".join(encoded), dtype=np.uint8).copy()
    return blob, offsets


def _decode_strings(blob: np.ndarray, offsets: np.ndarray) -> List[str]:
    """Inverse of :func:`_encode_strings`."""
    raw = blob.tobytes()
    bounds = offsets.tolist()
    return [
        raw[bounds[i] : bounds[i + 1]].decode("utf-8")
        for i in range(len(bounds) - 1)
    ]


class ColumnarTopology:
    """A staged DCN as parallel numpy arrays.

    Switches and links keep their object-topology insertion order: switch
    ``i`` of the arrays is the ``i``-th switch ever added, and likewise
    for links.  ``switch_pod`` / ``link_breakout`` intern their string
    labels into side tables (``-1`` means "none"); ``switch_num_ports``
    uses ``-1`` for "unspecified".

    Instances are cheap views over their arrays — construction from
    :meth:`from_arrays` (the shared-memory attach path) copies nothing.
    Treat the arrays as immutable unless you own them.
    """

    def __init__(
        self,
        name: str,
        num_stages: int,
        switch_names: List[str],
        switch_stage: np.ndarray,
        switch_pod: np.ndarray,
        switch_deep_buffer: np.ndarray,
        switch_num_ports: np.ndarray,
        pod_names: List[str],
        link_lower: np.ndarray,
        link_upper: np.ndarray,
        link_state: np.ndarray,
        link_capacity: np.ndarray,
        link_breakout: np.ndarray,
        breakout_names: List[str],
        corruption_up: np.ndarray,
        corruption_down: np.ndarray,
        lg_capable: np.ndarray,
        lg_protected: np.ndarray,
        lg_effective_loss: np.ndarray,
        lg_capacity_fraction: np.ndarray,
    ):
        self.name = name
        self.num_stages = num_stages
        self.switch_names = switch_names
        self.switch_stage = switch_stage
        self.switch_pod = switch_pod
        self.switch_deep_buffer = switch_deep_buffer
        self.switch_num_ports = switch_num_ports
        self.pod_names = pod_names
        self.link_lower = link_lower
        self.link_upper = link_upper
        self.link_state = link_state
        self.link_capacity = link_capacity
        self.link_breakout = link_breakout
        self.breakout_names = breakout_names
        self.corruption_up = corruption_up
        self.corruption_down = corruption_down
        self.lg_capable = lg_capable
        self.lg_protected = lg_protected
        self.lg_effective_loss = lg_effective_loss
        self.lg_capacity_fraction = lg_capacity_fraction
        self._link_index: Optional[Dict[LinkId, int]] = None
        self._switch_index: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #

    @property
    def num_switches(self) -> int:
        return len(self.switch_names)

    @property
    def num_links(self) -> int:
        return int(self.link_lower.shape[0])

    def switch_index(self) -> Dict[str, int]:
        """Switch name → array index (lazily built, then memoized)."""
        if self._switch_index is None:
            self._switch_index = {
                name: i for i, name in enumerate(self.switch_names)
            }
        return self._switch_index

    def link_index(self) -> Dict[LinkId, int]:
        """Canonical link id → array index (lazily built, then memoized)."""
        if self._link_index is None:
            names = self.switch_names
            lower = self.link_lower.tolist()
            upper = self.link_upper.tolist()
            self._link_index = {
                (names[lo], names[up]): i
                for i, (lo, up) in enumerate(zip(lower, upper))
            }
        return self._link_index

    def link_ids(self) -> List[LinkId]:
        """Canonical link ids in insertion order."""
        names = self.switch_names
        return [
            (names[lo], names[up])
            for lo, up in zip(self.link_lower.tolist(), self.link_upper.tolist())
        ]

    def enabled_mask(self) -> np.ndarray:
        """Boolean mask of links currently carrying traffic."""
        return self.link_state == 0

    # ------------------------------------------------------------------ #
    # Object-topology round trip
    # ------------------------------------------------------------------ #

    @classmethod
    def from_topology(cls, topo: Topology) -> "ColumnarTopology":
        """Intern an object topology into arrays (lossless)."""
        switch_names: List[str] = []
        stages: List[int] = []
        pods: List[int] = []
        deep: List[bool] = []
        ports: List[int] = []
        pod_names: List[str] = []
        pod_intern: Dict[str, int] = {}
        switch_idx: Dict[str, int] = {}
        for sw in topo.switches():
            switch_idx[sw.name] = len(switch_names)
            switch_names.append(sw.name)
            stages.append(sw.stage)
            if sw.pod is None:
                pods.append(-1)
            else:
                interned = pod_intern.get(sw.pod)
                if interned is None:
                    interned = pod_intern[sw.pod] = len(pod_names)
                    pod_names.append(sw.pod)
                pods.append(interned)
            deep.append(sw.deep_buffer)
            ports.append(-1 if sw.num_ports is None else sw.num_ports)

        num_links = topo.num_links
        lower = np.empty(num_links, dtype=np.int32)
        upper = np.empty(num_links, dtype=np.int32)
        state = np.empty(num_links, dtype=np.int8)
        capacity = np.empty(num_links, dtype=np.float64)
        breakout = np.empty(num_links, dtype=np.int32)
        corr_up = np.empty(num_links, dtype=np.float64)
        corr_down = np.empty(num_links, dtype=np.float64)
        capable = np.empty(num_links, dtype=np.bool_)
        protected = np.empty(num_links, dtype=np.bool_)
        eff_loss = np.empty(num_links, dtype=np.float64)
        cap_frac = np.empty(num_links, dtype=np.float64)
        breakout_names: List[str] = []
        breakout_intern: Dict[str, int] = {}
        for i, link in enumerate(topo.links()):
            lower[i] = switch_idx[link.lower]
            upper[i] = switch_idx[link.upper]
            state[i] = _STATE_TO_CODE[link.state]
            capacity[i] = link.capacity_gbps
            if link.breakout_group is None:
                breakout[i] = -1
            else:
                interned = breakout_intern.get(link.breakout_group)
                if interned is None:
                    interned = breakout_intern[link.breakout_group] = len(
                        breakout_names
                    )
                    breakout_names.append(link.breakout_group)
                breakout[i] = interned
            corr_up[i] = link.corruption_rate[Direction.UP]
            corr_down[i] = link.corruption_rate[Direction.DOWN]
            capable[i] = link.lg_capable
            protected[i] = link.lg_protected
            eff_loss[i] = link.lg_effective_loss
            cap_frac[i] = link.lg_capacity_fraction

        return cls(
            name=topo.name,
            num_stages=topo.num_stages,
            switch_names=switch_names,
            switch_stage=np.asarray(stages, dtype=np.int32),
            switch_pod=np.asarray(pods, dtype=np.int32),
            switch_deep_buffer=np.asarray(deep, dtype=np.bool_),
            switch_num_ports=np.asarray(ports, dtype=np.int32),
            pod_names=pod_names,
            link_lower=lower,
            link_upper=upper,
            link_state=state,
            link_capacity=capacity,
            link_breakout=breakout,
            breakout_names=breakout_names,
            corruption_up=corr_up,
            corruption_down=corr_down,
            lg_capable=capable,
            lg_protected=protected,
            lg_effective_loss=eff_loss,
            lg_capacity_fraction=cap_frac,
        )

    def to_topology(self) -> Topology:
        """Materialize the object topology (inverse of ``from_topology``).

        Switches and links are re-added in array order, so the rebuilt
        topology iterates identically to the original — the property the
        byte-identical simulation guarantees rest on.
        """
        topo = Topology(num_stages=self.num_stages, name=self.name)
        pods = self.pod_names
        stages = self.switch_stage.tolist()
        pod_idx = self.switch_pod.tolist()
        deep = self.switch_deep_buffer.tolist()
        ports = self.switch_num_ports.tolist()
        for i, name in enumerate(self.switch_names):
            topo.add_switch(
                Switch(
                    name=name,
                    stage=stages[i],
                    pod=None if pod_idx[i] < 0 else pods[pod_idx[i]],
                    deep_buffer=deep[i],
                    num_ports=None if ports[i] < 0 else ports[i],
                )
            )
        names = self.switch_names
        groups = self.breakout_names
        lower = self.link_lower.tolist()
        upper = self.link_upper.tolist()
        state = self.link_state.tolist()
        capacity = self.link_capacity.tolist()
        breakout = self.link_breakout.tolist()
        corr_up = self.corruption_up.tolist()
        corr_down = self.corruption_down.tolist()
        capable = self.lg_capable.tolist()
        protected = self.lg_protected.tolist()
        eff_loss = self.lg_effective_loss.tolist()
        cap_frac = self.lg_capacity_fraction.tolist()
        for i in range(self.num_links):
            lid = topo.add_link(
                names[lower[i]],
                names[upper[i]],
                capacity_gbps=capacity[i],
                breakout_group=None if breakout[i] < 0 else groups[breakout[i]],
            )
            link = topo.link(lid)
            link.state = _CODE_TO_STATE[state[i]]
            link.corruption_rate[Direction.UP] = corr_up[i]
            link.corruption_rate[Direction.DOWN] = corr_down[i]
            link.lg_capable = capable[i]
            link.lg_protected = protected[i]
            link.lg_effective_loss = eff_loss[i]
            link.lg_capacity_fraction = cap_frac[i]
            if protected[i]:
                topo._lg_protected.add(lid)
        return topo

    # ------------------------------------------------------------------ #
    # Direct construction (array-space Clos)
    # ------------------------------------------------------------------ #

    @classmethod
    def build_clos(
        cls,
        num_pods: int,
        tors_per_pod: int,
        aggs_per_pod: int,
        num_spines: int,
        name: str = "clos",
    ) -> "ColumnarTopology":
        """Plane-wired Clos built directly in array space.

        Produces arrays identical to
        ``from_topology(build_clos(...))`` (same switch/link order, same
        names) without materializing the object graph — the fleet-scale
        fast path: a 350K-link DCN builds in well under a second.
        """
        if min(num_pods, tors_per_pod, aggs_per_pod, num_spines) < 1:
            raise ValueError("all Clos dimensions must be >= 1")
        if num_spines % aggs_per_pod != 0:
            raise ValueError(
                f"num_spines={num_spines} must be divisible by "
                f"aggs_per_pod={aggs_per_pod} for plane wiring"
            )
        group = num_spines // aggs_per_pod
        per_pod_switches = aggs_per_pod + tors_per_pod
        num_switches = num_spines + num_pods * per_pod_switches
        per_pod_links = tors_per_pod * aggs_per_pod + aggs_per_pod * group
        num_links = num_pods * per_pod_links

        switch_names: List[str] = [f"spine{s}" for s in range(num_spines)]
        switch_stage = np.empty(num_switches, dtype=np.int32)
        switch_pod = np.empty(num_switches, dtype=np.int32)
        switch_stage[:num_spines] = 2
        switch_pod[:num_spines] = -1
        pod_names = [f"pod{p}" for p in range(num_pods)]

        lower = np.empty(num_links, dtype=np.int32)
        upper = np.empty(num_links, dtype=np.int32)

        # Per-pod wiring mirrors topology.clos.build_clos: aggs are added
        # first, then each ToR with its agg links, then agg→spine links.
        tor_agg = tors_per_pod * aggs_per_pod
        aggs = np.arange(aggs_per_pod, dtype=np.int32)
        tors = np.arange(tors_per_pod, dtype=np.int32)
        spine_targets = np.arange(num_spines, dtype=np.int32).reshape(
            aggs_per_pod, group
        )
        pod_tor_lower = np.repeat(tors, aggs_per_pod)
        pod_tor_upper = np.tile(aggs, tors_per_pod)
        pod_agg_lower = np.repeat(aggs, group)
        pod_agg_upper = spine_targets.reshape(-1)
        for pod in range(num_pods):
            base = num_spines + pod * per_pod_switches
            switch_stage[base : base + aggs_per_pod] = 1
            switch_stage[base + aggs_per_pod : base + per_pod_switches] = 0
            switch_pod[base : base + per_pod_switches] = pod
            label = pod_names[pod]
            switch_names.extend(
                f"{label}/agg{a}" for a in range(aggs_per_pod)
            )
            switch_names.extend(
                f"{label}/tor{t}" for t in range(tors_per_pod)
            )
            off = pod * per_pod_links
            lower[off : off + tor_agg] = base + aggs_per_pod + pod_tor_lower
            upper[off : off + tor_agg] = base + pod_tor_upper
            lower[off + tor_agg : off + per_pod_links] = base + pod_agg_lower
            upper[off + tor_agg : off + per_pod_links] = pod_agg_upper

        return cls(
            name=name,
            num_stages=3,
            switch_names=switch_names,
            switch_stage=switch_stage,
            switch_pod=switch_pod,
            switch_deep_buffer=np.zeros(num_switches, dtype=np.bool_),
            switch_num_ports=np.full(num_switches, -1, dtype=np.int32),
            pod_names=pod_names,
            link_lower=lower,
            link_upper=upper,
            link_state=np.zeros(num_links, dtype=np.int8),
            link_capacity=np.full(num_links, 40.0, dtype=np.float64),
            link_breakout=np.full(num_links, -1, dtype=np.int32),
            breakout_names=[],
            corruption_up=np.zeros(num_links, dtype=np.float64),
            corruption_down=np.zeros(num_links, dtype=np.float64),
            lg_capable=np.zeros(num_links, dtype=np.bool_),
            lg_protected=np.zeros(num_links, dtype=np.bool_),
            lg_effective_loss=np.zeros(num_links, dtype=np.float64),
            lg_capacity_fraction=np.ones(num_links, dtype=np.float64),
        )

    # ------------------------------------------------------------------ #
    # Flat-array form (npz / shared memory)
    # ------------------------------------------------------------------ #

    def arrays(self) -> Dict[str, np.ndarray]:
        """The whole topology as contiguous arrays, :data:`ARRAY_FIELDS` order.

        String tables become UTF-8 blobs + int64 offsets; scalars
        (``name``, ``num_stages``) are *not* included — callers carry them
        in their own metadata (npz ``meta`` entry, shm handle).
        """
        switch_blob, switch_offsets = _encode_strings(self.switch_names)
        pod_blob, pod_offsets = _encode_strings(self.pod_names)
        breakout_blob, breakout_offsets = _encode_strings(self.breakout_names)
        out = {
            "switch_blob": switch_blob,
            "switch_offsets": switch_offsets,
            "switch_stage": self.switch_stage,
            "switch_pod": self.switch_pod,
            "switch_deep_buffer": self.switch_deep_buffer,
            "switch_num_ports": self.switch_num_ports,
            "pod_blob": pod_blob,
            "pod_offsets": pod_offsets,
            "link_lower": self.link_lower,
            "link_upper": self.link_upper,
            "link_state": self.link_state,
            "link_capacity": self.link_capacity,
            "link_breakout": self.link_breakout,
            "breakout_blob": breakout_blob,
            "breakout_offsets": breakout_offsets,
            "corruption_up": self.corruption_up,
            "corruption_down": self.corruption_down,
            "lg_capable": self.lg_capable,
            "lg_protected": self.lg_protected,
            "lg_effective_loss": self.lg_effective_loss,
            "lg_capacity_fraction": self.lg_capacity_fraction,
        }
        return {field: out[field] for field in ARRAY_FIELDS}

    @classmethod
    def from_arrays(
        cls, name: str, num_stages: int, arrays: Dict[str, np.ndarray]
    ) -> "ColumnarTopology":
        """Rebuild from :meth:`arrays` output (zero-copy where possible)."""
        missing = [f for f in ARRAY_FIELDS if f not in arrays]
        if missing:
            raise ValueError(f"missing columnar fields: {missing}")
        return cls(
            name=name,
            num_stages=num_stages,
            switch_names=_decode_strings(
                arrays["switch_blob"], arrays["switch_offsets"]
            ),
            switch_stage=np.asarray(arrays["switch_stage"], dtype=np.int32),
            switch_pod=np.asarray(arrays["switch_pod"], dtype=np.int32),
            switch_deep_buffer=np.asarray(
                arrays["switch_deep_buffer"], dtype=np.bool_
            ),
            switch_num_ports=np.asarray(
                arrays["switch_num_ports"], dtype=np.int32
            ),
            pod_names=_decode_strings(
                arrays["pod_blob"], arrays["pod_offsets"]
            ),
            link_lower=np.asarray(arrays["link_lower"], dtype=np.int32),
            link_upper=np.asarray(arrays["link_upper"], dtype=np.int32),
            link_state=np.asarray(arrays["link_state"], dtype=np.int8),
            link_capacity=np.asarray(
                arrays["link_capacity"], dtype=np.float64
            ),
            link_breakout=np.asarray(arrays["link_breakout"], dtype=np.int32),
            breakout_names=_decode_strings(
                arrays["breakout_blob"], arrays["breakout_offsets"]
            ),
            corruption_up=np.asarray(
                arrays["corruption_up"], dtype=np.float64
            ),
            corruption_down=np.asarray(
                arrays["corruption_down"], dtype=np.float64
            ),
            lg_capable=np.asarray(arrays["lg_capable"], dtype=np.bool_),
            lg_protected=np.asarray(arrays["lg_protected"], dtype=np.bool_),
            lg_effective_loss=np.asarray(
                arrays["lg_effective_loss"], dtype=np.float64
            ),
            lg_capacity_fraction=np.asarray(
                arrays["lg_capacity_fraction"], dtype=np.float64
            ),
        )

    def digest(self) -> str:
        """SHA-256 over the canonical array encoding (content identity).

        Two columnar topologies with equal digests decode to identical
        object topologies; the shm transport uses this as the scenario
        cache's topology-identity component.
        """
        h = hashlib.sha256()
        h.update(
            f"columnar:{COLUMNAR_FORMAT_VERSION}:{self.name}:"
            f"{self.num_stages}".encode("utf-8")
        )
        for field, array in self.arrays().items():
            h.update(field.encode("utf-8"))
            h.update(np.ascontiguousarray(array).tobytes())
        return "sha256:" + h.hexdigest()


class ColumnarPathCounter:
    """Valley-free ToR-to-spine path counting as vectorized array ops.

    The same DP as :class:`~repro.core.path_counting.PathCounter` (§5.1),
    but one scatter-add pass per stage over int64 arrays: a full recount
    of a 350K-link Clos is milliseconds, so fleet-scale consumers recount
    instead of maintaining dirty regions.

    Construct from a :class:`ColumnarTopology` (the fleet / shm path), or
    bind live to an object topology with :meth:`for_topology` — the
    counter then tracks administrative flips by updating its state column
    in place, which is what lets the object-counter equivalence suites
    run both implementations side by side.
    """

    def __init__(self, col: ColumnarTopology):
        self._col = col
        self._state = col.link_state.copy()
        self._topo: Optional[Topology] = None
        self._rebuild_structure()

    @classmethod
    def for_topology(cls, topo: Topology) -> "ColumnarPathCounter":
        """Bind to a live object topology (admin changes tracked)."""
        counter = cls(ColumnarTopology.from_topology(topo))
        counter._topo = topo
        topo.subscribe_admin_changes(counter._on_admin_change)
        topo.subscribe_structure_changes(counter._on_structure_change)
        return counter

    def detach(self) -> None:
        """Unsubscribe from a live topology (no-op for array-only use)."""
        if self._topo is not None:
            self._topo.unsubscribe_admin_changes(self._on_admin_change)
            self._topo.unsubscribe_structure_changes(
                self._on_structure_change
            )
            self._topo = None

    # ------------------------------------------------------------------ #
    # Live-binding notifications
    # ------------------------------------------------------------------ #

    def _on_admin_change(self, link_id: LinkId) -> None:
        index = self._col.link_index()[link_id]
        state = self._topo.link(link_id).state
        self._state[index] = _STATE_TO_CODE[state]
        self._live_cache = None

    def notify_link_change(self, link_id: LinkId) -> None:
        """Tell a live-bound counter a link's state was mutated directly."""
        if self._topo is not None:
            self._on_admin_change(link_id)

    def _on_structure_change(self) -> None:
        topo = self._topo
        self._col = ColumnarTopology.from_topology(topo)
        self._state = self._col.link_state.copy()
        self._rebuild_structure()

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    def _rebuild_structure(self) -> None:
        col = self._col
        top = col.num_stages - 1
        self._top = top
        # Links grouped by the stage of their lower endpoint: pass ``s``
        # of the DP folds stage-``s+1`` counts down into stage ``s``.
        lower_stage = col.switch_stage[col.link_lower]
        self._stage_links: List[np.ndarray] = [
            np.nonzero(lower_stage == s)[0] for s in range(top)
        ]
        self._tor_indexes = np.nonzero(col.switch_stage == 0)[0]
        self._spine_indexes = np.nonzero(col.switch_stage == top)[0]
        self._baseline = self._count(None)
        self._live_cache: Optional[np.ndarray] = None

    @property
    def columnar(self) -> ColumnarTopology:
        return self._col

    # ------------------------------------------------------------------ #
    # DP kernel
    # ------------------------------------------------------------------ #

    def _count(self, enabled: Optional[np.ndarray]) -> np.ndarray:
        """One full DP pass.  ``enabled=None`` counts the pristine design."""
        col = self._col
        counts = np.zeros(col.num_switches, dtype=np.int64)
        counts[self._spine_indexes] = 1
        for s in range(self._top - 1, -1, -1):
            idx = self._stage_links[s]
            if enabled is not None:
                idx = idx[enabled[idx]]
            np.add.at(counts, col.link_lower[idx], counts[col.link_upper[idx]])
        return counts

    def _live_counts(self) -> np.ndarray:
        if self._live_cache is None:
            self._live_cache = self._count(self._state == 0)
        return self._live_cache

    def _counts_for(
        self, extra_disabled: Optional[Iterable[LinkId]]
    ) -> np.ndarray:
        if not extra_disabled:
            return self._live_counts()
        enabled = self._state == 0
        index = self._col.link_index()
        for lid in extra_disabled:
            enabled[index[lid]] = False
        return self._count(enabled)

    # ------------------------------------------------------------------ #
    # Public API (PathCounter-compatible surface)
    # ------------------------------------------------------------------ #

    def baseline_array(self) -> np.ndarray:
        """Design path counts by switch index (treat as read-only)."""
        return self._baseline

    def baseline(self) -> Dict[str, int]:
        """Design path counts (all links enabled) for every switch."""
        return dict(
            zip(self._col.switch_names, self._baseline.tolist())
        )

    def baseline_for(self, switch: str) -> int:
        return int(self._baseline[self._col.switch_index()[switch]])

    def counts_array(
        self, extra_disabled: Optional[Iterable[LinkId]] = None
    ) -> np.ndarray:
        """Current path counts by switch index."""
        return self._counts_for(extra_disabled)

    def counts(
        self, extra_disabled: Optional[Iterable[LinkId]] = None
    ) -> Dict[str, int]:
        """Current path counts, optionally with extra hypothetical disables."""
        counts = self._counts_for(extra_disabled)
        return dict(zip(self._col.switch_names, counts.tolist()))

    def tor_fraction_array(
        self, extra_disabled: Optional[Iterable[LinkId]] = None
    ) -> np.ndarray:
        """ToR path fractions in ToR (stage-0 insertion) order."""
        counts = self._counts_for(extra_disabled)[self._tor_indexes]
        bases = self._baseline[self._tor_indexes]
        out = np.zeros(len(self._tor_indexes), dtype=np.float64)
        np.divide(counts, bases, out=out, where=bases > 0)
        return out

    def tor_fractions(
        self,
        extra_disabled: Optional[Iterable[LinkId]] = None,
        tors: Optional[Iterable[str]] = None,
    ) -> Dict[str, float]:
        """Available path fraction (current / design) per ToR."""
        fractions = self.tor_fraction_array(extra_disabled)
        names = [self._col.switch_names[i] for i in self._tor_indexes.tolist()]
        result = dict(zip(names, fractions.tolist()))
        if tors is None:
            return result
        return {tor: result[tor] for tor in tors}

    def worst_tor_fraction(self) -> float:
        """Minimum ToR path fraction (the Figures 15–16 metric)."""
        if not len(self._tor_indexes):
            return 1.0
        return float(self.tor_fraction_array().min())

    def average_tor_fraction(self) -> float:
        """Mean ToR path fraction, bit-identical to the object counter.

        :class:`PathCounter` keeps the running sum as exact
        :class:`fractions.Fraction`; matching it requires exact rational
        arithmetic here too.  ToRs are grouped by their (few distinct)
        baseline denominators, counts are summed per group as integers,
        and only the handful of per-group fractions touch ``Fraction``.
        """
        num_tors = len(self._tor_indexes)
        if not num_tors:
            return 1.0
        counts = self._counts_for(None)[self._tor_indexes]
        bases = self._baseline[self._tor_indexes]
        uniques, inverse = np.unique(bases, return_inverse=True)
        sums = np.zeros(len(uniques), dtype=np.int64)
        np.add.at(sums, inverse, counts)
        fracsum = Fraction(0)
        for total, base in zip(sums.tolist(), uniques.tolist()):
            if base:
                fracsum += Fraction(total, base)
        return float(fracsum / num_tors)

    def affected_tors(self, link_id: LinkId) -> Set[str]:
        """ToRs downstream of ``link_id`` over currently enabled links."""
        col = self._col
        index = col.link_index()[link_id]
        lower = int(col.link_lower[index])
        if int(col.switch_stage[lower]) == 0:
            return {col.switch_names[lower]}
        enabled = self._state == 0
        frontier = np.array([lower], dtype=np.int64)
        seen = np.zeros(col.num_switches, dtype=np.bool_)
        seen[lower] = True
        while len(frontier):
            member = np.isin(col.link_upper, frontier) & enabled
            below = np.unique(col.link_lower[member])
            below = below[~seen[below]]
            seen[below] = True
            frontier = below
        tors = np.nonzero(seen & (col.switch_stage == 0))[0]
        return {col.switch_names[i] for i in tors.tolist()}
