"""JSON and binary (de)serialization of topologies.

Operators exchange topology snapshots between the monitoring system and the
CorrOpt controller (Figure 13); a stable, human-inspectable JSON format
makes traces and simulation scenarios reproducible artifacts.

For fleet-scale snapshots (§2: ~350K links across 15 DCNs) the JSON form
is impractically large and slow; :func:`save_topology_npz` /
:func:`load_topology_npz` store the columnar array form
(:mod:`repro.topology.columnar`) as a compressed ``.npz`` — tens of times
smaller and loadable in milliseconds, with the same lossless round-trip
guarantees.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.topology.elements import Direction, LinkState, Switch
from repro.topology.graph import Topology

FORMAT_VERSION = 1


def topology_to_dict(topo: Topology) -> Dict[str, Any]:
    """Serialize a topology (including state and corruption) to a dict."""
    return {
        "version": FORMAT_VERSION,
        "name": topo.name,
        "num_stages": topo.num_stages,
        "switches": [
            {
                "name": sw.name,
                "stage": sw.stage,
                "pod": sw.pod,
                "deep_buffer": sw.deep_buffer,
            }
            for sw in topo.switches()
        ],
        "links": [
            {
                "lower": link.lower,
                "upper": link.upper,
                "state": link.state.value,
                "capacity_gbps": link.capacity_gbps,
                "breakout_group": link.breakout_group,
                "corruption_up": link.corruption_rate[Direction.UP],
                "corruption_down": link.corruption_rate[Direction.DOWN],
            }
            for link in topo.links()
        ],
    }


def topology_from_dict(data: Dict[str, Any]) -> Topology:
    """Rebuild a topology from :func:`topology_to_dict` output."""
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported topology format version {data.get('version')!r}"
        )
    topo = Topology(num_stages=data["num_stages"], name=data["name"])
    for sw in data["switches"]:
        topo.add_switch(
            Switch(
                name=sw["name"],
                stage=sw["stage"],
                pod=sw.get("pod"),
                deep_buffer=sw.get("deep_buffer", False),
            )
        )
    for entry in data["links"]:
        lid = topo.add_link(
            entry["lower"],
            entry["upper"],
            capacity_gbps=entry.get("capacity_gbps", 40.0),
            breakout_group=entry.get("breakout_group"),
        )
        link = topo.link(lid)
        link.state = LinkState(entry.get("state", "enabled"))
        link.corruption_rate[Direction.UP] = entry.get("corruption_up", 0.0)
        link.corruption_rate[Direction.DOWN] = entry.get("corruption_down", 0.0)
    return topo


def save_topology(topo: Topology, path: Union[str, Path]) -> None:
    """Write a topology to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(topology_to_dict(topo), handle, indent=1)


def load_topology(path: Union[str, Path]) -> Topology:
    """Read a topology from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return topology_from_dict(json.load(handle))


def save_topology_npz(topo: Topology, path: Union[str, Path]) -> None:
    """Write a topology as a compressed columnar ``.npz`` archive.

    The archive holds the :meth:`ColumnarTopology.arrays` columns plus a
    JSON ``meta`` entry (format version, name, stage count).  Lossless:
    administrative state, corruption rates, breakout groups, and the
    LinkGuardian fields all survive the round trip.
    """
    import numpy as np

    from repro.topology.columnar import (
        COLUMNAR_FORMAT_VERSION,
        ColumnarTopology,
    )

    col = ColumnarTopology.from_topology(topo)
    meta = json.dumps(
        {
            "format": "repro-topology-npz",
            "version": COLUMNAR_FORMAT_VERSION,
            "name": col.name,
            "num_stages": col.num_stages,
        },
        sort_keys=True,
    )
    arrays = col.arrays()
    arrays["meta"] = np.frombuffer(meta.encode("utf-8"), dtype=np.uint8)
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)


def load_topology_npz(path: Union[str, Path]) -> Topology:
    """Read a topology written by :func:`save_topology_npz`."""
    import numpy as np

    from repro.topology.columnar import (
        COLUMNAR_FORMAT_VERSION,
        ColumnarTopology,
    )

    with np.load(path) as archive:
        if "meta" not in archive:
            raise ValueError(f"{path}: not a repro topology .npz (no meta)")
        meta = json.loads(archive["meta"].tobytes().decode("utf-8"))
        if meta.get("format") != "repro-topology-npz":
            raise ValueError(
                f"{path}: unexpected archive format {meta.get('format')!r}"
            )
        if meta.get("version") != COLUMNAR_FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported columnar format version "
                f"{meta.get('version')!r}"
            )
        arrays = {key: archive[key] for key in archive.files if key != "meta"}
    col = ColumnarTopology.from_arrays(
        meta["name"], meta["num_stages"], arrays
    )
    return col.to_topology()
