"""Staged data center network topologies (the paper's structural substrate).

Public API:

- :class:`~repro.topology.graph.Topology` and the element types
  (:class:`~repro.topology.elements.Switch`,
  :class:`~repro.topology.elements.Link`,
  :class:`~repro.topology.elements.Direction`,
  :class:`~repro.topology.elements.LinkState`);
- builders: :func:`~repro.topology.clos.build_clos`,
  :func:`~repro.topology.clos.build_multi_tier`,
  :func:`~repro.topology.fattree.build_fattree`,
  :func:`~repro.topology.random_topo.build_irregular_clos`;
- breakout cables: :func:`~repro.topology.breakout.assign_breakout_groups`,
  :func:`~repro.topology.breakout.repair_collateral`;
- validation and JSON serialization.
"""

from repro.topology.breakout import assign_breakout_groups, repair_collateral
from repro.topology.clos import build_clos, build_multi_tier
from repro.topology.elements import (
    Direction,
    DirectionId,
    Link,
    LinkId,
    LinkState,
    Switch,
    canonical_link_id,
)
from repro.topology.fattree import build_fattree
from repro.topology.graph import Topology
from repro.topology.random_topo import (
    build_irregular_clos,
    degrade,
    sprinkle_corruption,
)
from repro.topology.columnar import ColumnarPathCounter, ColumnarTopology
from repro.topology.serialization import (
    load_topology,
    load_topology_npz,
    save_topology,
    save_topology_npz,
    topology_from_dict,
    topology_to_dict,
)
from repro.topology.validate import TopologyError, is_connected_to_spine, validate

__all__ = [
    "ColumnarPathCounter",
    "ColumnarTopology",
    "Direction",
    "DirectionId",
    "Link",
    "LinkId",
    "LinkState",
    "Switch",
    "Topology",
    "TopologyError",
    "assign_breakout_groups",
    "build_clos",
    "build_fattree",
    "build_irregular_clos",
    "build_multi_tier",
    "canonical_link_id",
    "degrade",
    "is_connected_to_spine",
    "load_topology",
    "load_topology_npz",
    "repair_collateral",
    "save_topology",
    "save_topology_npz",
    "sprinkle_corruption",
    "topology_from_dict",
    "topology_to_dict",
    "validate",
]
