"""Breakout-cable modeling.

§4 (root cause 5): a breakout cable splits one high-speed port into several
lower-speed links; when the cable is faulty, *all* of its member links
corrupt at the same time — the primary source of the weak spatial locality
of corruption observed in §3.  §8 further notes that *repairing* a breakout
cable takes its healthy members down too (collateral damage).

This module assigns breakout groups to an existing topology and computes the
collateral set of a repair.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set

from repro.topology.elements import LinkId
from repro.topology.graph import Topology


def assign_breakout_groups(
    topo: Topology,
    fraction: float = 0.25,
    links_per_cable: int = 4,
    rng: Optional[random.Random] = None,
) -> Dict[str, List[LinkId]]:
    """Group a fraction of each switch's uplinks into breakout cables.

    Groups are formed from consecutive uplinks of the same switch, mirroring
    how a physical 40G→4x10G cable lands on adjacent ports.

    Args:
        topo: Topology to annotate (mutated in place).
        fraction: Target fraction of links placed into breakout groups.
        links_per_cable: Member links per cable (typically 4).
        rng: Random source; defaults to a fixed seed for reproducibility.

    Returns:
        Mapping from breakout group id to its member link ids.
    """
    if not 0 <= fraction <= 1:
        raise ValueError(f"fraction {fraction} outside [0, 1]")
    if links_per_cable < 2:
        raise ValueError("a breakout cable has at least 2 member links")
    rng = rng or random.Random(0)

    groups: Dict[str, List[LinkId]] = {}
    counter = 0
    for switch in topo.switches():
        uplinks = [
            lid
            for lid in topo.uplinks(switch.name)
            if topo.link(lid).breakout_group is None
        ]
        if len(uplinks) < links_per_cable:
            continue
        num_cables = int(len(uplinks) * fraction) // links_per_cable
        for c in range(num_cables):
            start = c * links_per_cable
            members = uplinks[start : start + links_per_cable]
            if len(members) < links_per_cable:
                break
            group_id = f"bc{counter}"
            counter += 1
            for lid in members:
                topo.link(lid).breakout_group = group_id
            groups[group_id] = members
    # Shuffle determinism note: grouping is positional, rng reserved for
    # future randomized placement policies.
    del rng
    return groups


def repair_collateral(topo: Topology, link_id: LinkId) -> Set[LinkId]:
    """Links that must be taken down to repair ``link_id``.

    For a plain link this is the link itself.  For a breakout member it is
    the whole cable (§8: "to repair the breakout cable, an additional three,
    healthy links have to be turned off").
    """
    link = topo.link(link_id)
    if link.breakout_group is None:
        return {link_id}
    return set(topo.breakout_members(link.breakout_group))
