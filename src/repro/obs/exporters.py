"""Exporters: Prometheus text, JSONL event stream, Chrome trace.

Every artifact leads with provenance — package version, git SHA when
available, and the run manifest — so files are self-describing:

- **Prometheus text** (``*.prom``): the classic exposition format; header
  lines are ``#`` comments, so any Prometheus scraper/parser accepts the
  snapshot unchanged.
- **JSONL events** (``*.jsonl``): first line is a header record
  (``type: "header"``), then one JSON object per event in emission order.
- **Chrome trace** (``*.trace.json``): the ``traceEvents`` JSON object
  format; load in ``about:tracing`` or https://ui.perfetto.dev.  Spans are
  complete (``"ph": "X"``) events in wall-clock microseconds with sim-time
  bounds in ``args``.

Schema validators for all three live in :mod:`repro.obs.schema`; the CI
job round-trips emitted artifacts through them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.obs.manifest import RunManifest, git_sha, package_version
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import SpanTracer

#: Bumped when an exporter's layout changes incompatibly.
EVENTS_FORMAT_VERSION = 1
TRACE_FORMAT_VERSION = 1
PROM_FORMAT_VERSION = 1


def _provenance(manifest: Optional[RunManifest]) -> Dict[str, object]:
    if manifest is not None:
        return {
            "repro_version": manifest.repro_version,
            "git_sha": manifest.git_sha,
        }
    return {"repro_version": package_version(), "git_sha": git_sha()}


# ---------------------------------------------------------------------- #
# Prometheus text format
# ---------------------------------------------------------------------- #


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def unescape_label(value: str) -> str:
    """Invert :func:`_escape_label` (Prometheus label-value escaping).

    Escape sequences must be decoded left-to-right in one pass —
    chained ``str.replace`` calls would mangle ``\\\\n`` (an escaped
    backslash followed by ``n``) into a newline.
    """
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "\\":
                out.append("\\")
                i += 2
                continue
            if nxt == '"':
                out.append('"')
                i += 2
                continue
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def _format_labels(key, extra: Optional[Dict[str, str]] = None) -> str:
    pairs = list(key) + sorted((extra or {}).items())
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(
    registry: MetricsRegistry,
    manifest: Optional[RunManifest] = None,
    sim_time_s: Optional[float] = None,
) -> str:
    """Render a registry snapshot in the Prometheus exposition format."""
    prov = _provenance(manifest)
    lines: List[str] = [
        f"# repro-obs prometheus snapshot format={PROM_FORMAT_VERSION}",
        f"# repro-version: {prov['repro_version']}",
    ]
    if prov["git_sha"]:
        lines.append(f"# git-sha: {prov['git_sha']}")
    if sim_time_s is not None:
        lines.append(f"# sim-time-s: {_format_value(sim_time_s)}")
    if manifest is not None and manifest.topology.get("digest"):
        lines.append(f"# topology-digest: {manifest.topology['digest']}")

    for inst in registry.instruments():
        lines.append(f"# HELP {inst.name} {inst.help or inst.name}")
        lines.append(f"# TYPE {inst.name} {inst.kind}")
        if inst.kind == "histogram":
            for key, histogram in sorted(inst.histograms.items()):
                for le, cum in histogram.cumulative():
                    labels = _format_labels(key, {"le": le})
                    lines.append(f"{inst.name}_bucket{labels} {cum}")
                lines.append(
                    f"{inst.name}_sum{_format_labels(key)} "
                    f"{_format_value(histogram.total)}"
                )
                lines.append(
                    f"{inst.name}_count{_format_labels(key)} {histogram.count}"
                )
        else:
            for key, value in inst.samples():
                lines.append(
                    f"{inst.name}{_format_labels(key)} {_format_value(value)}"
                )
    return "\n".join(lines) + "\n"


def write_prometheus(
    path,
    registry: MetricsRegistry,
    manifest: Optional[RunManifest] = None,
    sim_time_s: Optional[float] = None,
) -> Path:
    out = Path(path)
    out.write_text(
        prometheus_text(registry, manifest, sim_time_s), encoding="utf-8"
    )
    return out


# ---------------------------------------------------------------------- #
# JSONL event stream
# ---------------------------------------------------------------------- #


def events_header(manifest: Optional[RunManifest] = None) -> Dict[str, object]:
    header: Dict[str, object] = {
        "type": "header",
        "format": "repro-obs-events",
        "format_version": EVENTS_FORMAT_VERSION,
    }
    header.update(_provenance(manifest))
    if manifest is not None:
        header["manifest"] = manifest.to_dict()
    return header


def events_jsonl_lines(
    events: Iterable[Dict[str, object]],
    manifest: Optional[RunManifest] = None,
) -> Iterable[str]:
    """Header line followed by one compact JSON object per event."""
    yield json.dumps(events_header(manifest), sort_keys=True)
    for event in events:
        yield json.dumps(event, sort_keys=True, default=str)


def write_events_jsonl(
    path,
    events: Iterable[Dict[str, object]],
    manifest: Optional[RunManifest] = None,
) -> Path:
    out = Path(path)
    with open(out, "w", encoding="utf-8") as handle:
        for line in events_jsonl_lines(events, manifest):
            handle.write(line + "\n")
    return out


# ---------------------------------------------------------------------- #
# Chrome trace (about:tracing / Perfetto)
# ---------------------------------------------------------------------- #


def chrome_trace(
    tracer: SpanTracer,
    manifest: Optional[RunManifest] = None,
    process_name: str = "repro",
) -> Dict[str, object]:
    """Build the Chrome ``traceEvents`` object from recorded spans."""
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": process_name},
        }
    ]
    for span in tracer.spans:
        args: Dict[str, object] = {
            "sim_time_start_s": span.start_sim_s,
            "sim_time_end_s": span.end_sim_s,
        }
        args.update(span.args)
        events.append(
            {
                "name": span.name,
                "cat": span.cat or "repro",
                "ph": "X",
                "ts": span.start_wall_us,
                "dur": span.dur_wall_us,
                "pid": 1,
                "tid": 1,
                "args": args,
            }
        )
    other: Dict[str, object] = {
        "format_version": TRACE_FORMAT_VERSION,
        "dropped_spans": tracer.dropped,
    }
    other.update(_provenance(manifest))
    if manifest is not None:
        other["manifest"] = manifest.to_dict()
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    path,
    tracer: SpanTracer,
    manifest: Optional[RunManifest] = None,
) -> Path:
    out = Path(path)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(tracer, manifest), handle, default=str)
        handle.write("\n")
    return out
