"""Span tracing over the closed mitigation loop, dual-clocked.

Every span records **both** clocks:

- wall-clock start/duration (microseconds from ``time.perf_counter``) —
  what the Chrome-trace export uses, so Perfetto shows where real CPU time
  goes;
- sim-time start/end (seconds) — what the run *means*, attached as span
  args, so a 2-day repair and the 40 µs it took to simulate are both
  visible.

Wall clock flows only *out* of the tracer into trace files; it is never
handed back to the simulation, preserving determinism.  Nesting is
tracked with an explicit stack (spans are synchronous context managers),
so parent/depth relationships in the Chrome trace are exact rather than
inferred from timestamp containment.

The span buffer is bounded: after ``max_spans`` spans new ones are counted
in ``dropped`` instead of stored, so week-long instrumented replays cannot
exhaust memory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


def _zero_sim_time() -> float:
    """Default sim clock (module-level so tracers pickle cleanly)."""
    return 0.0


@dataclass
class SpanRecord:
    """One finished span."""

    name: str
    cat: str
    start_wall_us: float
    dur_wall_us: float
    start_sim_s: float
    end_sim_s: float
    depth: int
    args: Dict[str, object] = field(default_factory=dict)


class LiveSpan:
    """An open span; use as a context manager (``with tracer.span(...)``)."""

    __slots__ = ("_tracer", "name", "cat", "args", "_start_wall", "_start_sim")

    def __init__(self, tracer: "SpanTracer", name: str, cat: str, args: Dict):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def set(self, **attrs) -> "LiveSpan":
        """Attach (or overwrite) span attributes."""
        self.args.update(attrs)
        return self

    def __enter__(self) -> "LiveSpan":
        tracer = self._tracer
        self._start_wall = tracer.clock()
        self._start_sim = tracer.sim_time()
        tracer._stack.append(self)
        return self

    def __exit__(self, *exc) -> bool:
        tracer = self._tracer
        end_wall = tracer.clock()
        popped = tracer._stack.pop()
        assert popped is self, "span exited out of order"
        tracer._finish(
            SpanRecord(
                name=self.name,
                cat=self.cat,
                start_wall_us=(self._start_wall - tracer._epoch) * 1e6,
                dur_wall_us=(end_wall - self._start_wall) * 1e6,
                start_sim_s=self._start_sim,
                end_sim_s=tracer.sim_time(),
                depth=len(tracer._stack),
                args=self.args,
            )
        )
        return False


class SpanTracer:
    """Collects :class:`SpanRecord` objects with correct nesting.

    Args:
        sim_time_fn: Zero-arg callable returning current sim time; the
            owning recorder wires this to its ``set_sim_time`` state.
        clock: Wall-clock source (injectable for deterministic tests).
        max_spans: Buffer bound; further spans only bump ``dropped``.
    """

    def __init__(
        self,
        sim_time_fn: Optional[Callable[[], float]] = None,
        clock: Callable[[], float] = time.perf_counter,
        max_spans: int = 250_000,
    ):
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.sim_time = sim_time_fn or _zero_sim_time
        self.clock = clock
        self.max_spans = max_spans
        self.spans: List[SpanRecord] = []
        self.dropped = 0
        self._stack: List[LiveSpan] = []
        self._epoch = clock()

    def span(self, name: str, cat: str = "", **attrs) -> LiveSpan:
        return LiveSpan(self, name, cat, dict(attrs))

    def _finish(self, record: SpanRecord) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(record)

    @property
    def depth(self) -> int:
        """Current nesting depth (open spans)."""
        return len(self._stack)

    def by_name(self, name: str) -> List[SpanRecord]:
        return [s for s in self.spans if s.name == name]

    def total_wall_us(self, name: str) -> float:
        return sum(s.dur_wall_us for s in self.by_name(name))
