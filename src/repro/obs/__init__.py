"""Unified observability: metrics registry, span tracing, run provenance.

The paper's operational core (§2, §5–7) is *seeing* corruption — SNMP
counters, optical power, and decision outcomes across 350K links.  This
package is the reproduction's equivalent: a session-scoped
:class:`MetricsRegistry`, a dual-clock (wall + sim time)
:class:`SpanTracer` covering the closed loop poll → sanitize → store →
detect → decide → repair, and a :class:`RunManifest` so every artifact
names the config, seeds, version, and topology that produced it.

Instrumentation points all through the mitigation pipeline accept an
``obs`` recorder and default to :data:`NULL_RECORDER`, a strict no-op:
uninstrumented runs stay bit-identical to pre-observability behaviour.

Exporters: Prometheus text (:func:`prometheus_text`), JSONL events, and
Chrome-trace JSON loadable in ``about:tracing`` / Perfetto.  Schema
validators for all formats live in :mod:`repro.obs.schema`.
"""

from repro.obs.exporters import (  # noqa: F401
    chrome_trace,
    events_jsonl_lines,
    prometheus_text,
    unescape_label,
    write_chrome_trace,
    write_events_jsonl,
    write_prometheus,
)
from repro.obs.health import (  # noqa: F401
    HealthReport,
    HealthTracker,
    aggregate_sweep_health,
    alert_lines_from_report,
    health_from_run_result,
    scorecard_json,
    summarize_scorecard,
    write_scorecard,
)
from repro.obs.manifest import (  # noqa: F401
    RunManifest,
    build_manifest,
    git_sha,
    package_version,
    topology_digest,
)
from repro.obs.recorder import (  # noqa: F401
    NULL_RECORDER,
    NullRecorder,
    Recorder,
)
from repro.obs.registry import MetricsRegistry  # noqa: F401
from repro.obs.schema import (  # noqa: F401
    validate_alerts_jsonl,
    validate_audit_jsonl,
    validate_bench_trajectory,
    validate_benchmark_record,
    validate_checkpoint_file,
    validate_chrome_trace,
    validate_events_jsonl,
    validate_health_scorecard,
    validate_prometheus_text,
    validate_service_report_jsonl,
    validate_sweep_jsonl,
)
from repro.obs.session import ObsRecorder  # noqa: F401
from repro.obs.slo import (  # noqa: F401
    DEFAULT_SLO_RULES,
    SLOEngine,
    SLORule,
    rules_from_json,
)
from repro.obs.tracing import SpanRecord, SpanTracer  # noqa: F401

__all__ = [
    "DEFAULT_SLO_RULES",
    "HealthReport",
    "HealthTracker",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "ObsRecorder",
    "Recorder",
    "RunManifest",
    "SLOEngine",
    "SLORule",
    "SpanRecord",
    "SpanTracer",
    "aggregate_sweep_health",
    "alert_lines_from_report",
    "build_manifest",
    "chrome_trace",
    "events_jsonl_lines",
    "git_sha",
    "health_from_run_result",
    "package_version",
    "prometheus_text",
    "rules_from_json",
    "scorecard_json",
    "summarize_scorecard",
    "topology_digest",
    "unescape_label",
    "validate_alerts_jsonl",
    "validate_audit_jsonl",
    "validate_bench_trajectory",
    "validate_benchmark_record",
    "validate_checkpoint_file",
    "validate_chrome_trace",
    "validate_events_jsonl",
    "validate_health_scorecard",
    "validate_prometheus_text",
    "validate_service_report_jsonl",
    "validate_sweep_jsonl",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_prometheus",
    "write_scorecard",
]
