"""Event-time fleet health indicators and scorecards.

This module turns the raw streams the repo already records (chaos
counters, controller decisions, audit entries) into the paper-grounded
health picture an operator would watch:

* **detection latency** — corruption onset to the first confirmed
  detection (§5.2: CorrOpt reacts within a monitoring interval),
* **time to mitigation** — onset to the disable decision (§7.1),
* **false-positive disable rate** — healthy links pulled from service
  (§7.2 repair accuracy),
* **penalty attribution** — how much penalty-seconds the fleet incurred
  before mitigation vs how much mitigation avoided (§6's objective),
* **capacity headroom** — worst ToR fraction against the §6 constraint,
* **quarantine depth** and **breaker / debouncer duty cycles** — the
  telemetry-quality guardrails from the resilience layer.

Everything is measured in **simulation event time**.  The tracker is
fed by the sensing pipeline's hooks, carries no wall-clock state, and
pickles with the pipeline, so scorecards and alert streams are
byte-identical across worker counts and across checkpoint kill/resume
boundaries.  :meth:`HealthTracker.report` is pure — it never mutates
tracker state — so a partial scorecard can be flushed on graceful drain
without perturbing a later resume.
"""

from __future__ import annotations

import json
from bisect import insort
from dataclasses import dataclass
from math import ceil
from typing import Dict, List, Optional, Sequence, Tuple

from repro._version import __version__
from repro.core.penalty import linear_penalty
from repro.obs.slo import (
    ALERTS_FORMAT,
    ALERTS_FORMAT_VERSION,
    SLOEngine,
    SLORule,
)

__all__ = [
    "HEALTH_FORMAT",
    "HEALTH_FORMAT_VERSION",
    "HealthReport",
    "HealthTracker",
    "aggregate_sweep_health",
    "alert_lines_from_report",
    "health_from_run_result",
    "scorecard_json",
    "summarize_scorecard",
    "write_scorecard",
]

LinkId = Tuple[str, str]

HEALTH_FORMAT = "repro-health-scorecard"
#: Bumped when the scorecard layout changes incompatibly.
HEALTH_FORMAT_VERSION = 1

#: Scorecards list at most this many per-link rows (plus an omitted count)
#: so fleet-scale runs stay bounded.
MAX_LINK_ROWS = 256

#: A pending detection older than this many poll intervals is *overdue*:
#: the monitoring loop should have surfaced it by now (§5.2).
OVERDUE_POLLS = 2.0


def _quantile(sorted_values: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank quantile over an already-sorted list (deterministic)."""
    if not sorted_values:
        return None
    rank = max(1, ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def _canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass
class _ShardStats:
    """Per-shard health accumulators (picklable)."""

    polls: int = 0
    breaker_open_polls: int = 0
    debounce_confirmed: int = 0  # last observed confirmed count
    detections: int = 0
    mitigations: int = 0
    false_disables: int = 0

    def to_dict(self, index: int) -> Dict[str, object]:
        duty = (
            self.breaker_open_polls / self.polls if self.polls else 0.0
        )
        return {
            "shard": index,
            "polls": self.polls,
            "breaker_open_polls": self.breaker_open_polls,
            "breaker_open_duty": duty,
            "debounce_confirmed": self.debounce_confirmed,
            "detections": self.detections,
            "mitigations": self.mitigations,
            "false_disables": self.false_disables,
        }


class HealthTracker:
    """Accumulates event-time health indicators from sensing hooks.

    The tracker is attached by the sensing pipeline and driven purely by
    simulation events: onsets, detections, disable decisions, repairs,
    and poll ticks.  It owns the embedded :class:`SLOEngine`, which is
    evaluated against the fleet snapshot at every poll tick.
    """

    def __init__(
        self,
        poll_interval_s: float,
        capacity_floor: float,
        duration_s: float,
        num_shards: int = 1,
        rules: Optional[Sequence[SLORule]] = None,
    ):
        self.poll_interval_s = poll_interval_s
        self.capacity_floor = capacity_floor
        self.duration_s = duration_s
        #: Optional ShardRouter-like object (``shard_of(link_id) -> int``);
        #: the sharded service installs its router after construction.
        self.router = None
        self.slo = SLOEngine(rules)

        # Per-link fault lifecycle (one active fault per link, mirroring
        # the kernel's onset bookkeeping).
        self._onset_s: Dict[LinkId, float] = {}
        self._detect_s: Dict[LinkId, float] = {}
        self._mitigate_s: Dict[LinkId, float] = {}
        self._weight: Dict[LinkId, float] = {}

        # Completed-interval accumulators: sorted for O(1) nearest-rank
        # quantiles, plus running sums for means (insertion follows event
        # order, so float accumulation is replay-stable).
        self._detect_lat: List[float] = []
        self._detect_lat_sum = 0.0
        self._ttm: List[float] = []
        self._ttm_sum = 0.0

        # Counters.
        self.true_disables = 0
        self.false_disables = 0
        self.kept_by_capacity = 0
        self.repairs = 0
        self.polls = 0

        # Capacity / quarantine / penalty gauges.
        self.headroom_last: Optional[float] = None
        self.headroom_min: Optional[float] = None
        self.quarantine_depth = 0
        self.quarantine_peak = 0
        self.penalty_last = 0.0
        self.last_poll_s = 0.0

        # Finalized penalty attribution (penalty-seconds).
        self._penalty_incurred = 0.0
        self._penalty_avoided = 0.0

        self.shards: List[_ShardStats] = [
            _ShardStats() for _ in range(max(1, num_shards))
        ]

        #: Optional cause-attribution ledger (:class:`repro.core.
        #: diagnosis.DiagnosisStats`), attached by diagnosis-aware
        #: pipelines.  ``None`` on historical configurations so their
        #: scorecards are byte-identical.
        self.diagnosis = None

    def attach_diagnosis(self, stats) -> None:
        """Surface a pipeline's diagnosis ledger in health reports."""
        self.diagnosis = stats

    # -- routing -------------------------------------------------------- #

    def _shard(self, link_id: LinkId) -> _ShardStats:
        index = 0
        if self.router is not None:
            index = self.router.shard_of(link_id)
        if index >= len(self.shards):
            index = 0
        return self.shards[index]

    # -- lifecycle hooks (event time only) ------------------------------ #

    def note_onset(self, time_s: float, link_id: LinkId, rate: float) -> None:
        """A corruption fault started on ``link_id`` at ``time_s``."""
        self._onset_s[link_id] = time_s
        self._weight[link_id] = linear_penalty(rate)
        # A re-onset on an undetected link restarts its clock (the kernel
        # tracks a single active fault per link the same way).
        self._detect_s.pop(link_id, None)
        self._mitigate_s.pop(link_id, None)

    def note_detection(self, now: float, link_id: LinkId) -> None:
        """First confirmed detection of the active fault on ``link_id``."""
        onset = self._onset_s.get(link_id)
        if onset is None or link_id in self._detect_s:
            return
        self._detect_s[link_id] = now
        latency = max(0.0, now - onset)
        insort(self._detect_lat, latency)
        self._detect_lat_sum += latency
        self._shard(link_id).detections += 1

    def note_mitigation(
        self, now: float, link_id: LinkId, truly_corrupting: bool, rate: float
    ) -> None:
        """The controller disabled ``link_id`` (the paper's mitigation)."""
        if not truly_corrupting:
            self.false_disables += 1
            self._shard(link_id).false_disables += 1
            return
        self.true_disables += 1
        onset = self._onset_s.get(link_id)
        if onset is None or link_id in self._mitigate_s:
            return
        self._mitigate_s[link_id] = now
        self._weight[link_id] = linear_penalty(rate)
        ttm = max(0.0, now - onset)
        insort(self._ttm, ttm)
        self._ttm_sum += ttm
        self._penalty_incurred += self._weight[link_id] * ttm
        self._shard(link_id).mitigations += 1

    def note_kept(self, now: float, link_id: LinkId) -> None:
        """A corrupting link was kept in service by the §6 constraint."""
        del now, link_id
        self.kept_by_capacity += 1

    def note_repair(self, time_s: float, link_id: LinkId) -> None:
        """The fault on ``link_id`` was repaired; finalize its intervals."""
        self.repairs += 1
        mitigated = self._mitigate_s.pop(link_id, None)
        weight = self._weight.pop(link_id, 0.0)
        if mitigated is not None:
            self._penalty_avoided += weight * max(0.0, time_s - mitigated)
        self._onset_s.pop(link_id, None)
        self._detect_s.pop(link_id, None)

    def note_poll(
        self,
        time_s: float,
        worst: float,
        quarantined: int,
        components: Sequence[Tuple[int, int, int]],
        penalty: float,
        obs=None,
    ) -> None:
        """One monitoring tick: capacity, quarantine, duty cycles, SLOs.

        ``components`` carries one ``(shard_index, breaker_open,
        debounce_confirmed)`` triple per shard.
        """
        self.polls += 1
        self.last_poll_s = time_s
        headroom = worst - self.capacity_floor
        self.headroom_last = headroom
        if self.headroom_min is None or headroom < self.headroom_min:
            self.headroom_min = headroom
        self.quarantine_depth = quarantined
        if quarantined > self.quarantine_peak:
            self.quarantine_peak = quarantined
        self.penalty_last = penalty
        for index, breaker_open, confirmed in components:
            if index >= len(self.shards):
                continue
            stats = self.shards[index]
            stats.polls += 1
            stats.breaker_open_polls += 1 if breaker_open else 0
            stats.debounce_confirmed = confirmed
        self.slo.evaluate(time_s, self.snapshot(time_s), obs)

    # -- pure readers --------------------------------------------------- #

    def _pending_penalties(self, now: float) -> Tuple[float, float]:
        """Live (incurred, avoided) penalty-seconds for open intervals."""
        incurred = 0.0
        avoided = 0.0
        # Deterministic accumulation order: sort by link id.
        for link_id in sorted(self._onset_s):
            weight = self._weight.get(link_id, 0.0)
            mitigated = self._mitigate_s.get(link_id)
            if mitigated is None:
                incurred += weight * max(0.0, now - self._onset_s[link_id])
            else:
                avoided += weight * max(0.0, now - mitigated)
        return incurred, avoided

    def snapshot(self, now: Optional[float] = None) -> Dict[str, object]:
        """The fleet indicator tree at ``now`` (pure; SLO rules read this)."""
        if now is None:
            now = self.last_poll_s
        pending = [
            link for link in self._onset_s if link not in self._detect_s
        ]
        overdue_after = OVERDUE_POLLS * self.poll_interval_s
        overdue = sum(
            1 for link in pending if now - self._onset_s[link] > overdue_after
        )
        backlog = sum(
            1
            for link in self._detect_s
            if link not in self._mitigate_s and link in self._onset_s
        )
        total_disables = self.true_disables + self.false_disables
        live_incurred, live_avoided = self._pending_penalties(now)
        polls = sum(stats.polls for stats in self.shards)
        open_polls = sum(stats.breaker_open_polls for stats in self.shards)
        return {
            "detection": {
                "count": len(self._detect_lat),
                "latency_p50_s": _quantile(self._detect_lat, 0.50),
                "latency_p95_s": _quantile(self._detect_lat, 0.95),
                "latency_mean_s": (
                    self._detect_lat_sum / len(self._detect_lat)
                    if self._detect_lat
                    else None
                ),
                "pending": len(pending),
                "overdue": overdue,
            },
            "mitigation": {
                "count": len(self._ttm),
                "ttm_p50_s": _quantile(self._ttm, 0.50),
                "ttm_p95_s": _quantile(self._ttm, 0.95),
                "ttm_mean_s": (
                    self._ttm_sum / len(self._ttm) if self._ttm else None
                ),
                "backlog": backlog,
                "kept_by_capacity": self.kept_by_capacity,
                "repairs": self.repairs,
            },
            "disables": {
                "true": self.true_disables,
                "false": self.false_disables,
                "false_rate": (
                    self.false_disables / total_disables
                    if total_disables
                    else 0.0
                ),
            },
            "penalty": {
                "current": self.penalty_last,
                "unmitigated_proxy_s": self._penalty_incurred + live_incurred,
                "mitigated_proxy_s": self._penalty_avoided + live_avoided,
            },
            "capacity": {
                "floor": self.capacity_floor,
                "headroom": self.headroom_last,
                "headroom_min": self.headroom_min,
            },
            "quarantine": {
                "depth": self.quarantine_depth,
                "peak": self.quarantine_peak,
            },
            "breaker": {
                "open_duty": open_polls / polls if polls else 0.0,
            },
            "debounce": {
                "confirmed": sum(
                    stats.debounce_confirmed for stats in self.shards
                ),
            },
            "polls": self.polls,
        }

    def _link_rows(self) -> Tuple[List[Dict[str, object]], int]:
        rows = []
        for link_id in sorted(self._onset_s):
            onset = self._onset_s[link_id]
            detected = self._detect_s.get(link_id)
            mitigated = self._mitigate_s.get(link_id)
            rows.append({
                "link": "->".join(link_id),
                "onset_s": onset,
                "detected_s": detected,
                "mitigated_s": mitigated,
                "detection_latency_s": (
                    detected - onset if detected is not None else None
                ),
                "ttm_s": (
                    mitigated - onset if mitigated is not None else None
                ),
            })
        omitted = max(0, len(rows) - MAX_LINK_ROWS)
        return rows[:MAX_LINK_ROWS], omitted

    def report(
        self, end_s: Optional[float] = None, complete: bool = True
    ) -> "HealthReport":
        """Build a :class:`HealthReport`; never mutates tracker state."""
        if end_s is None:
            end_s = self.duration_s if complete else self.last_poll_s
        links, omitted = self._link_rows()
        return HealthReport(
            fleet=self.snapshot(end_s),
            shards=[
                stats.to_dict(index)
                for index, stats in enumerate(self.shards)
            ],
            links=links,
            links_omitted=omitted,
            slo_rules=self.slo.rule_states(),
            alerts=list(self.slo.alerts),
            complete=complete,
            end_s=end_s,
            diagnosis=(
                self.diagnosis.row() if self.diagnosis is not None else None
            ),
        )


@dataclass
class HealthReport:
    """A frozen view of tracker state — plain data, picklable, canonical."""

    fleet: Dict[str, object]
    shards: List[Dict[str, object]]
    links: List[Dict[str, object]]
    links_omitted: int
    slo_rules: List[Dict[str, object]]
    alerts: List[Dict[str, object]]
    complete: bool
    end_s: float
    #: Flat diagnosis-accuracy block (``DiagnosisStats.row()``); ``None``
    #: unless the run was diagnosis-aware, keeping legacy scorecards
    #: byte-identical.
    diagnosis: Optional[Dict[str, object]] = None

    def firing(self) -> List[str]:
        return [
            rule["name"]
            for rule in self.slo_rules
            if rule["state"] == "firing"
        ]

    def row(self) -> Dict[str, object]:
        """Compact flat block for sweep/tournament rows and service reports."""
        detection = self.fleet["detection"]
        mitigation = self.fleet["mitigation"]
        disables = self.fleet["disables"]
        return {
            "detections": detection["count"],
            "detection_latency_p50_s": detection["latency_p50_s"],
            "detection_latency_p95_s": detection["latency_p95_s"],
            "detection_pending": detection["pending"],
            "ttm_p50_s": mitigation["ttm_p50_s"],
            "ttm_p95_s": mitigation["ttm_p95_s"],
            "false_disables": disables["false"],
            "false_disable_rate": disables["false_rate"],
            "headroom_min": self.fleet["capacity"]["headroom_min"],
            "quarantine_peak": self.fleet["quarantine"]["peak"],
            "breaker_open_duty": self.fleet["breaker"]["open_duty"],
            "alerts_fired": len(self.alerts),
            "slo_ok": not self.firing(),
        }

    def scorecard(self, extra: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """The full canonical scorecard object."""
        card: Dict[str, object] = {
            "format": HEALTH_FORMAT,
            "format_version": HEALTH_FORMAT_VERSION,
            "repro_version": __version__,
            "sensing": "telemetry",
            "complete": self.complete,
            "end_s": self.end_s,
            "fleet": self.fleet,
            "shards": self.shards,
            "links": self.links,
            "links_omitted": self.links_omitted,
            "slo": {
                "rules": self.slo_rules,
                "alerts": self.alerts,
                "alerts_fired": len(self.alerts),
                "firing": self.firing(),
                "ok": not self.firing(),
            },
        }
        if self.diagnosis is not None:
            card["diagnosis"] = self.diagnosis
        if extra:
            card.update(extra)
        return card


def scorecard_json(report: HealthReport, extra=None) -> str:
    """Canonical single-line JSON for a scorecard (byte-stable)."""
    return _canonical(report.scorecard(extra))


def write_scorecard(path, report: HealthReport, extra=None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(scorecard_json(report, extra) + "\n")


def alert_lines_from_report(report: HealthReport) -> List[str]:
    """The report's alert stream as canonical JSONL (header + rows).

    Mirrors :meth:`repro.obs.slo.SLOEngine.alert_lines` for contexts
    that only hold the finished report (CLI artifact flush).
    """
    header = {
        "type": "header",
        "format": ALERTS_FORMAT,
        "format_version": ALERTS_FORMAT_VERSION,
        "repro_version": __version__,
        "rules": [rule["name"] for rule in report.slo_rules],
        "alerts": len(report.alerts),
    }
    return [_canonical(row) for row in [header] + list(report.alerts)]


def health_from_run_result(result) -> Dict[str, object]:
    """A reduced scorecard for runs without telemetry sensing.

    Oracle ``repro simulate`` runs have no onset/detection stream, so
    the scorecard carries only penalty and capacity indicators and marks
    ``sensing`` accordingly.  Runs whose result already holds a
    :class:`HealthReport` get the full card.
    """
    health = getattr(result, "health", None)
    if isinstance(health, HealthReport):
        return health.scorecard()
    worst = result.metrics.worst_tor_fraction
    return {
        "format": HEALTH_FORMAT,
        "format_version": HEALTH_FORMAT_VERSION,
        "repro_version": __version__,
        "sensing": "oracle",
        "complete": True,
        "end_s": result.duration_s,
        "fleet": {
            "penalty": {
                "integral": result.penalty_integral,
                "mean": result.mean_penalty(),
            },
            "capacity": {
                "worst_min": worst.min_value(),
            },
        },
        "shards": [],
        "links": [],
        "links_omitted": 0,
        "slo": {
            "rules": [],
            "alerts": [],
            "alerts_fired": 0,
            "firing": [],
            "ok": True,
        },
    }


# -- scorecard consumers (the ``repro health`` command) ----------------- #

def _fmt(value, unit="") -> str:
    if value is None:
        return "n/a"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.6g}{unit}"
    return f"{value}{unit}"


def summarize_scorecard(card: Dict[str, object]) -> List[str]:
    """Human-readable scorecard lines for the CLI."""
    lines = []
    sensing = card.get("sensing", "telemetry")
    status = "complete" if card.get("complete") else "partial"
    lines.append(
        f"health scorecard ({sensing} sensing, {status}, "
        f"end={_fmt(card.get('end_s'), 's')})"
    )
    fleet = card.get("fleet", {})
    detection = fleet.get("detection")
    if detection:
        lines.append(
            "  detection: "
            f"{detection.get('count', 0)} detected, "
            f"p50={_fmt(detection.get('latency_p50_s'), 's')} "
            f"p95={_fmt(detection.get('latency_p95_s'), 's')} "
            f"pending={detection.get('pending', 0)} "
            f"overdue={detection.get('overdue', 0)}"
        )
    mitigation = fleet.get("mitigation")
    if mitigation:
        lines.append(
            "  mitigation: "
            f"{mitigation.get('count', 0)} disabled, "
            f"ttm p50={_fmt(mitigation.get('ttm_p50_s'), 's')} "
            f"p95={_fmt(mitigation.get('ttm_p95_s'), 's')} "
            f"backlog={mitigation.get('backlog', 0)} "
            f"repairs={mitigation.get('repairs', 0)}"
        )
    disables = fleet.get("disables")
    if disables:
        lines.append(
            "  disables: "
            f"true={disables.get('true', 0)} "
            f"false={disables.get('false', 0)} "
            f"false_rate={_fmt(disables.get('false_rate'))}"
        )
    penalty = fleet.get("penalty")
    if penalty:
        if "unmitigated_proxy_s" in penalty:
            lines.append(
                "  penalty: "
                f"current={_fmt(penalty.get('current'))} "
                f"unmitigated={_fmt(penalty.get('unmitigated_proxy_s'))} "
                f"avoided={_fmt(penalty.get('mitigated_proxy_s'))}"
            )
        else:
            lines.append(
                "  penalty: "
                f"integral={_fmt(penalty.get('integral'))} "
                f"mean={_fmt(penalty.get('mean'))}"
            )
    capacity = fleet.get("capacity")
    if capacity:
        lines.append(
            "  capacity: "
            f"headroom={_fmt(capacity.get('headroom'))} "
            f"min={_fmt(capacity.get('headroom_min', capacity.get('worst_min')))}"
        )
    quarantine = fleet.get("quarantine")
    if quarantine:
        lines.append(
            "  quarantine: "
            f"depth={quarantine.get('depth', 0)} "
            f"peak={quarantine.get('peak', 0)}"
        )
    for shard in card.get("shards", []):
        lines.append(
            f"  shard {shard['shard']}: "
            f"detections={shard['detections']} "
            f"mitigations={shard['mitigations']} "
            f"false={shard['false_disables']} "
            f"breaker_duty={_fmt(shard['breaker_open_duty'])}"
        )
    diagnosis = card.get("diagnosis")
    if diagnosis:
        lines.append(
            "  diagnosis: "
            f"{diagnosis.get('diagnoses', 0)} verdicts, "
            f"congestion_mitigations={diagnosis.get('congestion_mitigations', 0)} "
            f"missed_corrupting={diagnosis.get('missed_corrupting', 0)}"
        )
        for cause in ("corruption", "congestion", "both", "miswired", "unknown"):
            precision = diagnosis.get(f"precision_{cause}")
            recall = diagnosis.get(f"recall_{cause}")
            if precision is None and recall is None:
                continue
            lines.append(
                f"    {cause}: precision={_fmt(precision)} "
                f"recall={_fmt(recall)}"
            )
    slo = card.get("slo", {})
    firing = slo.get("firing", [])
    lines.append(
        "  slo: "
        + (
            "OK (no rules firing)"
            if not firing
            else "FIRING " + ",".join(firing)
        )
        + f" [{slo.get('alerts_fired', 0)} alert transition(s)]"
    )
    return lines


def aggregate_sweep_health(rows: List[Dict[str, object]]) -> Dict[str, object]:
    """Fleet summary over sweep/tournament rows carrying ``health`` blocks.

    Counters are summed; latency indicators are aggregated min/mean/max
    across jobs that reported them.
    """
    blocks = [row["health"] for row in rows if row.get("health")]
    summary: Dict[str, object] = {"jobs": len(rows), "jobs_with_health": len(blocks)}
    if not blocks:
        return summary
    for key in ("detections", "false_disables", "alerts_fired"):
        summary[key] = sum(int(block.get(key) or 0) for block in blocks)
    for key in (
        "detection_latency_p50_s",
        "detection_latency_p95_s",
        "ttm_p50_s",
        "ttm_p95_s",
        "false_disable_rate",
        "breaker_open_duty",
        "headroom_min",
    ):
        values = [
            float(block[key])
            for block in blocks
            if isinstance(block.get(key), (int, float))
            and not isinstance(block.get(key), bool)
        ]
        if values:
            summary[key] = {
                "min": min(values),
                "mean": sum(values) / len(values),
                "max": max(values),
            }
    summary["slo_ok_jobs"] = sum(
        1 for block in blocks if block.get("slo_ok", True)
    )
    return summary
