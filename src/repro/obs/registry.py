"""A session-scoped metrics registry: labeled counters, gauges, histograms.

Prometheus-shaped but dependency-free: instruments are identified by name,
carry a help string and a type, and hold one scalar (or one bucket vector)
per label-set.  The registry is deliberately forgiving — instruments are
created on first use — because instrumentation points should never raise.

Sim-time awareness: the registry itself stores no timestamps (a snapshot
is whatever the instruments hold *now*); exporters stamp snapshots with
both sim time and provenance headers at write time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets, tuned for durations in seconds (spans) and
#: small counts (queue depths, region sizes).  ``+Inf`` is implicit.
DEFAULT_BUCKETS = (
    0.0001,
    0.001,
    0.01,
    0.1,
    1.0,
    10.0,
    100.0,
    1000.0,
    10000.0,
)


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Histogram:
    """One label-set's bucketed observations (cumulative, Prometheus-style)."""

    buckets: Tuple[float, ...] = DEFAULT_BUCKETS
    counts: List[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self):
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)  # last = +Inf

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for i, upper in enumerate(self.buckets):
            if value <= upper:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> List[Tuple[str, int]]:
        """(le, cumulative count) pairs ending with ``+Inf``."""
        out: List[Tuple[str, int]] = []
        running = 0
        for upper, n in zip(self.buckets, self.counts):
            running += n
            out.append((repr(float(upper)), running))
        running += self.counts[-1]
        out.append(("+Inf", running))
        return out

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile as a bucket upper bound.

        Prometheus-style: the answer is the smallest bucket bound whose
        cumulative count reaches rank ``ceil(q * count)`` — an upper
        bound on the true quantile, ``inf`` when it falls in the
        overflow bucket, ``None`` for an empty histogram.
        """
        if self.count == 0:
            return None
        if not 0.0 < q <= 1.0:
            raise ValueError("q outside (0, 1]")
        rank = min(self.count, max(1, math.ceil(q * self.count)))
        running = 0
        for upper, n in zip(self.buckets, self.counts):
            running += n
            if running >= rank:
                return float(upper)
        return float("inf")


@dataclass
class Instrument:
    """A named metric family: one value (or histogram) per label-set."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str = ""
    values: Dict[LabelKey, float] = field(default_factory=dict)
    histograms: Dict[LabelKey, Histogram] = field(default_factory=dict)
    buckets: Tuple[float, ...] = DEFAULT_BUCKETS

    def samples(self) -> Iterator[Tuple[LabelKey, float]]:
        return iter(sorted(self.values.items()))


class MetricsRegistry:
    """Get-or-create instrument store keyed by metric name.

    Names follow Prometheus conventions (``snake_case``, unit-suffixed
    where meaningful); a name must keep one kind for the registry's
    lifetime — a kind clash raises, because silently recording a counter
    into a gauge is a bug worth failing loudly on (this is the one place
    the registry is strict).
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _get(
        self,
        name: str,
        kind: str,
        help: str = "",
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> Instrument:
        inst = self._instruments.get(name)
        if inst is None:
            inst = Instrument(
                name=name,
                kind=kind,
                help=help,
                buckets=buckets or DEFAULT_BUCKETS,
            )
            self._instruments[name] = inst
        elif inst.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {inst.kind}, "
                f"not {kind}"
            )
        if help and not inst.help:
            inst.help = help
        return inst

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        inst = self._get(name, "counter")
        key = _label_key(labels)
        inst.values[key] = inst.values.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        inst = self._get(name, "gauge")
        inst.values[_label_key(labels)] = value

    def observe(self, name: str, value: float, **labels) -> None:
        inst = self._get(name, "histogram")
        key = _label_key(labels)
        histogram = inst.histograms.get(key)
        if histogram is None:
            histogram = Histogram(buckets=inst.buckets)
            inst.histograms[key] = histogram
        histogram.observe(value)

    def describe(self, name: str, help: str, kind: str = "counter") -> None:
        """Pre-register a metric with a help string (optional nicety)."""
        self._get(name, kind, help=help)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def instruments(self) -> List[Instrument]:
        return [self._instruments[k] for k in sorted(self._instruments)]

    def get_value(self, name: str, **labels) -> Optional[float]:
        inst = self._instruments.get(name)
        if inst is None:
            return None
        return inst.values.get(_label_key(labels))

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label-sets (0 when absent)."""
        inst = self._instruments.get(name)
        if inst is None:
            return 0.0
        return sum(inst.values.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments
