"""The live recorder: one object that owns a run's observability state.

An :class:`ObsRecorder` bundles the three tentpole pieces —
:class:`~repro.obs.registry.MetricsRegistry`,
:class:`~repro.obs.tracing.SpanTracer`, and a JSONL event buffer — behind
the :class:`~repro.obs.recorder.Recorder` interface, plus the
:class:`~repro.obs.manifest.RunManifest` that stamps every export.

Construction is cheap; everything is in-memory until an explicit
``write_*`` call, so the simulation's I/O behaviour is unchanged until the
caller asks for artifacts.  The event buffer is bounded like the span
buffer (``dropped_events`` counts overflow) so instrumentation can never
exhaust memory on long replays.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.exporters import (
    write_chrome_trace,
    write_events_jsonl,
    write_prometheus,
)
from repro.obs.manifest import RunManifest
from repro.obs.recorder import Recorder
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import SpanTracer


class ObsRecorder(Recorder):
    """Recording implementation of the :class:`Recorder` interface.

    Args:
        manifest: Provenance stamped into every artifact (optional).
        max_spans: Span-buffer bound (see :class:`SpanTracer`).
        max_events: Event-buffer bound; overflow bumps ``dropped_events``.
    """

    enabled = True

    def __init__(
        self,
        manifest: Optional[RunManifest] = None,
        max_spans: int = 250_000,
        max_events: int = 250_000,
    ):
        self.manifest = manifest
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer(
            sim_time_fn=self._current_sim_time, max_spans=max_spans
        )
        self.events: List[Dict[str, object]] = []
        self.max_events = max_events
        self.dropped_events = 0
        self._sim_time = 0.0

    # ------------------------------------------------------------------ #
    # Recorder interface
    # ------------------------------------------------------------------ #

    def set_sim_time(self, time_s: float) -> None:
        self._sim_time = time_s

    def _current_sim_time(self) -> float:
        """Tracer clock hook (a bound method, not a lambda, so a recorder
        embedded in a service checkpoint pickles cleanly)."""
        return self._sim_time

    @property
    def sim_time_s(self) -> float:
        return self._sim_time

    def count(self, name: str, value: float = 1.0, **labels) -> None:
        self.registry.inc(name, value, **labels)

    def gauge(self, name: str, value: float, **labels) -> None:
        self.registry.set_gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels) -> None:
        self.registry.observe(name, value, **labels)

    def event(self, name: str, **fields) -> None:
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        record: Dict[str, object] = {
            "type": "event",
            "name": name,
            "sim_time_s": self._sim_time,
        }
        record.update(fields)
        self.events.append(record)

    def span(self, name: str, cat: str = "", **attrs):
        return self.tracer.span(name, cat=cat, **attrs)

    # ------------------------------------------------------------------ #
    # Scrapers for existing stats islands
    # ------------------------------------------------------------------ #

    def scrape_path_counter(self, counter, role: str = "shared") -> None:
        """Export a :class:`~repro.core.path_counting.PathCounterStats`.

        Gauge names use a ``path_counter_stats_`` prefix so they cannot
        clash with the live hot-path counters (e.g.
        ``path_counter_overlay_queries_total``).
        """
        stats = counter.stats
        self.gauge(
            "path_counter_stats_links_visited", stats.links_visited, role=role
        )
        self.gauge(
            "path_counter_stats_full_recounts", stats.full_recounts, role=role
        )
        self.gauge(
            "path_counter_stats_incremental_updates",
            stats.incremental_updates,
            role=role,
        )
        self.gauge(
            "path_counter_stats_overlay_queries",
            stats.overlay_queries,
            role=role,
        )

    def scrape_optimizer_stats(self, stats, role: str = "controller") -> None:
        """Export an aggregated :class:`~repro.core.optimizer.OptimizerStats`.

        Prefixed ``optimizer_stats_`` to stay clear of the live counters
        (e.g. ``optimizer_runs_total``).
        """
        for key, value in stats.as_dict().items():
            self.gauge(f"optimizer_stats_{key}", value, role=role)

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def write_metrics(self, path):
        """Write the Prometheus snapshot to ``path``."""
        return write_prometheus(
            path, self.registry, self.manifest, sim_time_s=self._sim_time
        )

    def write_events(self, path):
        """Write the JSONL event stream to ``path``."""
        return write_events_jsonl(path, self.events, self.manifest)

    def write_trace(self, path):
        """Write the Chrome trace to ``path``."""
        return write_chrome_trace(path, self.tracer, self.manifest)

    def summary(self) -> Dict[str, object]:
        """Compact run-level accounting (for the CLI and tests)."""
        return {
            "metrics": len(self.registry),
            "spans": len(self.tracer.spans),
            "dropped_spans": self.tracer.dropped,
            "events": len(self.events),
            "dropped_events": self.dropped_events,
            "sim_time_s": self._sim_time,
        }
