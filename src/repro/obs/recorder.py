"""The recorder interface: every instrumentation point's single dependency.

Instrumented components (:class:`~repro.core.controller.CorrOptController`,
:class:`~repro.telemetry.poller.SnmpPoller`, the optimizer, the ticket
queues, …) take an optional ``obs`` argument typed as :class:`Recorder`
and default to the shared :data:`NULL_RECORDER`.  The null recorder is a
pure no-op: with it, an instrumented run must be *bit-identical* to an
uninstrumented one — no RNG draws, no sim-time reads, no allocation on the
hot path beyond the method call itself.

:class:`~repro.obs.session.ObsRecorder` is the live implementation; it
fans the same calls out to a :class:`~repro.obs.registry.MetricsRegistry`,
a :class:`~repro.obs.tracing.SpanTracer`, and a JSONL event stream.

Two clocks, never mixed:

- **sim time** flows *into* the recorder via :meth:`Recorder.set_sim_time`
  (the simulation owns time; the recorder only annotates with it);
- **wall clock** is read only by the tracer for span durations and only
  ever flows *out* into trace files — it can never influence a decision.
"""

from __future__ import annotations


class NullSpan:
    """A reusable, state-free context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "NullSpan":
        """Attach attributes to the span (no-op here)."""
        return self


#: Shared singleton so ``with obs.span(...)`` allocates nothing when off.
NULL_SPAN = NullSpan()


class Recorder:
    """No-op recorder base class (and the interface contract).

    Subclass and override to actually record; see
    :class:`~repro.obs.session.ObsRecorder`.  ``enabled`` lets call sites
    guard work that only exists to feed the recorder (e.g. computing a
    label value) so the disabled path pays one attribute read.
    """

    enabled: bool = False

    def count(self, name: str, value: float = 1.0, **labels) -> None:
        """Increment a labeled monotonic counter."""

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set a labeled gauge to ``value``."""

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one observation into a labeled histogram."""

    def event(self, name: str, **fields) -> None:
        """Emit one structured event onto the JSONL stream."""

    def span(self, name: str, cat: str = "", **attrs):
        """Open a (context-manager) span; nests with enclosing spans."""
        return NULL_SPAN

    def set_sim_time(self, time_s: float) -> None:
        """Tell the recorder the current simulation time."""

    def scrape_path_counter(self, counter, role: str = "shared") -> None:
        """Export a path counter's cumulative stats (no-op here)."""

    def scrape_optimizer_stats(self, stats, role: str = "controller") -> None:
        """Export aggregated optimizer search stats (no-op here)."""


class NullRecorder(Recorder):
    """The default recorder: records nothing, perturbs nothing."""


#: Module-level default shared by every instrumentation point.
NULL_RECORDER = NullRecorder()
