"""Run provenance: what exactly produced this artifact?

The paper's operational loop only works because every number can be traced
back to a concrete network, config, and software revision.  A
:class:`RunManifest` captures the same for a simulation run — CLI command,
config knobs, seeds, package version, git SHA when available, topology
digest — and is embedded in every exporter header, so a Prometheus
snapshot or a Perfetto trace found on disk six months later still says
where it came from.

The topology digest covers *structure* (switches, links, capacities), not
transient administrative or corruption state: two runs over the same
design topology share a digest even though their link states diverge.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro._version import __version__


def package_version() -> str:
    """The repro package version embedded in every artifact."""
    return __version__


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """Current git commit SHA, or ``None`` outside a checkout.

    Best-effort provenance only: failures (no git binary, not a repo,
    timeout) must never break a run.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or str(Path(__file__).resolve().parent),
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except Exception:  # noqa: BLE001 — provenance is best-effort
        return None
    if out.returncode != 0:
        return None
    sha = out.stdout.strip()
    return sha if sha else None


def topology_digest(topo) -> str:
    """Stable SHA-256 over a topology's structure (hex).

    Covers name, stage count, switches, and link endpoints/capacities;
    excludes administrative state and corruption rates so the digest
    identifies the *design* topology across a run's mutations.
    """
    structure = {
        "name": topo.name,
        "num_stages": topo.num_stages,
        "switches": sorted(
            (sw.name, sw.stage, sw.pod, sw.deep_buffer)
            for sw in topo.switches()
        ),
        "links": sorted(
            (link.lower, link.upper, link.capacity_gbps, link.breakout_group)
            for link in topo.links()
        ),
    }
    canonical = json.dumps(structure, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class RunManifest:
    """Everything needed to re-run (or at least identify) a run.

    Attributes:
        command: The operation, e.g. ``"chaos"`` or ``"simulate"``.
        config: Flattened config knobs (JSON-serializable values only).
        seeds: Every RNG seed the run consumed, by role.
        repro_version: Package version.
        git_sha: Commit SHA when running from a checkout, else ``None``.
        topology: Digest + size summary of the scenario topology.
        python: Interpreter version string.
    """

    command: str
    config: Dict[str, Any] = field(default_factory=dict)
    seeds: Dict[str, int] = field(default_factory=dict)
    repro_version: str = field(default_factory=package_version)
    git_sha: Optional[str] = None
    topology: Dict[str, Any] = field(default_factory=dict)
    python: str = field(default_factory=platform.python_version)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "command": self.command,
            "config": dict(self.config),
            "seeds": dict(self.seeds),
            "repro_version": self.repro_version,
            "git_sha": self.git_sha,
            "topology": dict(self.topology),
            "python": self.python,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path) -> None:
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")


def build_manifest(
    command: str,
    config: Optional[Dict[str, Any]] = None,
    seeds: Optional[Dict[str, int]] = None,
    topo=None,
    with_git: bool = True,
) -> RunManifest:
    """Assemble a manifest for one run (topology digested when given)."""
    topology: Dict[str, Any] = {}
    if topo is not None:
        topology = {
            "name": topo.name,
            "switches": topo.num_switches,
            "links": topo.num_links,
            "stages": topo.num_stages,
            "digest": topology_digest(topo),
        }
    return RunManifest(
        command=command,
        config=dict(config or {}),
        seeds=dict(seeds or {}),
        git_sha=git_sha() if with_git else None,
        topology=topology,
    )
