"""Declarative SLO rules over the health indicators.

The paper's operational loop is only trustworthy if its health can be
*judged*, not just observed: §5.2's promise is that corruption is caught
within a monitoring interval and mitigated within minutes, §6 requires
the capacity constraint to hold at every instant, and §7.2 bounds how
often a healthy link may be pulled out of service.  An
:class:`SLORule` states one such promise as data — an indicator path
into the health snapshot, a comparator, a threshold, and a hysteresis
window — and the :class:`SLOEngine` evaluates the whole rule set at
every health snapshot, in **event time** only.

Alerts are structured transitions (``firing`` / ``resolved``), appended
to a deterministic internal stream and mirrored into the obs event
stream when a live recorder is attached.  Because evaluation consumes
nothing but simulation-derived values, the alert stream is byte-identical
across worker counts and across checkpoint kill/resume boundaries (the
engine pickles with the sensing pipeline).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

__all__ = [
    "ALERTS_FORMAT",
    "ALERTS_FORMAT_VERSION",
    "DEFAULT_SLO_RULES",
    "SLOEngine",
    "SLORule",
    "rules_from_json",
]

ALERTS_FORMAT = "repro-health-alerts"
#: Bumped when the alert record layout changes incompatibly.
ALERTS_FORMAT_VERSION = 1

_OPS = ("<=", ">=")
_SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class SLORule:
    """One service-level objective over a health indicator.

    Args:
        name: Stable rule identifier (appears in alerts and scorecards).
        indicator: Dotted path into the health snapshot, e.g.
            ``"detection.latency_p95_s"``.
        op: ``"<="`` (indicator must stay at or below ``threshold``) or
            ``">="`` (must stay at or above it).
        threshold: The objective's bound.
        for_s: Hysteresis window — the indicator must breach continuously
            for this many simulated seconds before the rule fires.
        clear_for_s: The indicator must satisfy the objective continuously
            for this long before a firing rule resolves.
        severity: ``info`` | ``warning`` | ``critical``.
        paper_ref: Paper section grounding this objective (documentation
            only; echoed into scorecards).
    """

    name: str
    indicator: str
    op: str
    threshold: float
    for_s: float = 0.0
    clear_for_s: float = 0.0
    severity: str = "warning"
    paper_ref: str = ""

    def validate(self) -> None:
        problems = []
        if not self.name:
            problems.append("rule needs a non-empty name")
        if not self.indicator:
            problems.append(f"{self.name}: empty indicator")
        if self.op not in _OPS:
            problems.append(f"{self.name}: op must be one of {_OPS}")
        if self.severity not in _SEVERITIES:
            problems.append(
                f"{self.name}: severity must be one of {_SEVERITIES}"
            )
        if self.for_s < 0 or self.clear_for_s < 0:
            problems.append(f"{self.name}: hysteresis windows must be >= 0")
        if problems:
            raise ValueError("; ".join(problems))

    def breached(self, value: float) -> bool:
        if self.op == "<=":
            return value > self.threshold
        return value < self.threshold

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "indicator": self.indicator,
            "op": self.op,
            "threshold": self.threshold,
            "for_s": self.for_s,
            "clear_for_s": self.clear_for_s,
            "severity": self.severity,
            "paper_ref": self.paper_ref,
        }


#: The built-in, paper-grounded objective set.  Thresholds are stated in
#: event time against the default 15-minute poll interval (§5.2).
DEFAULT_SLO_RULES = (
    SLORule(
        name="detection-latency-p95",
        indicator="detection.latency_p95_s",
        op="<=",
        threshold=1800.0,  # two polls
        for_s=3600.0,
        severity="warning",
        paper_ref="§5.2 (CorrOpt reacts within a monitoring interval)",
    ),
    SLORule(
        name="detection-overdue",
        indicator="detection.overdue",
        op="<=",
        threshold=0.0,
        for_s=3600.0,
        severity="critical",
        paper_ref="§5.2 (every corrupting link must surface)",
    ),
    SLORule(
        name="time-to-mitigation-p95",
        indicator="mitigation.ttm_p95_s",
        op="<=",
        threshold=7200.0,
        for_s=3600.0,
        severity="warning",
        paper_ref="§7.1 (fast checker disables within minutes)",
    ),
    SLORule(
        name="false-disable-rate",
        indicator="disables.false_rate",
        op="<=",
        threshold=0.05,
        severity="critical",
        paper_ref="§7.2 (repair accuracy; healthy links stay in service)",
    ),
    SLORule(
        name="capacity-headroom",
        indicator="capacity.headroom",
        op=">=",
        threshold=0.0,
        severity="critical",
        paper_ref="§6 (the capacity constraint must always hold)",
    ),
    SLORule(
        name="quarantine-depth",
        indicator="quarantine.depth",
        op="<=",
        threshold=64.0,
        for_s=7200.0,
        severity="warning",
        paper_ref="§5 (telemetry quality gates the whole loop)",
    ),
    SLORule(
        name="breaker-open-duty",
        indicator="breaker.open_duty",
        op="<=",
        threshold=0.5,
        for_s=3600.0,
        severity="warning",
        paper_ref="§6 (the optimizer must usually be available)",
    ),
)


def rules_from_json(text: str) -> List[SLORule]:
    """Parse a JSON list of rule objects into validated :class:`SLORule`s."""
    raw = json.loads(text)
    if not isinstance(raw, list):
        raise ValueError("SLO rules file must hold a JSON list")
    rules: List[SLORule] = []
    for index, entry in enumerate(raw):
        if not isinstance(entry, dict):
            raise ValueError(f"rules[{index}] is not an object")
        unknown = set(entry) - {
            "name", "indicator", "op", "threshold", "for_s", "clear_for_s",
            "severity", "paper_ref",
        }
        if unknown:
            raise ValueError(
                f"rules[{index}]: unknown keys {sorted(unknown)}"
            )
        rule = SLORule(**entry)
        rule.validate()
        rules.append(rule)
    names = [rule.name for rule in rules]
    if len(set(names)) != len(names):
        raise ValueError("duplicate rule names")
    return rules


def _lookup(snapshot: Dict[str, object], path: str) -> Optional[float]:
    """Resolve a dotted indicator path; None when absent or non-numeric."""
    node: object = snapshot
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


@dataclass
class _RuleState:
    """Per-rule hysteresis state machine (picklable)."""

    firing: bool = False
    breach_since: Optional[float] = None
    ok_since: Optional[float] = None
    breaches: int = 0  # completed firing episodes


class SLOEngine:
    """Evaluate a rule set against successive event-time health snapshots.

    The engine owns nothing wall-clock: ``evaluate`` is driven by the
    sensing pipeline at poll ticks and appends alert transitions to
    :attr:`alerts` in a canonical, replayable order (rule order within a
    tick follows the rule list).
    """

    def __init__(self, rules: Optional[Sequence[SLORule]] = None):
        self.rules: List[SLORule] = list(
            DEFAULT_SLO_RULES if rules is None else rules
        )
        for rule in self.rules:
            rule.validate()
        self._states: List[_RuleState] = [_RuleState() for _ in self.rules]
        self.alerts: List[Dict[str, object]] = []

    # -- evaluation ----------------------------------------------------- #

    def _transition(
        self,
        time_s: float,
        rule: SLORule,
        state: str,
        value: float,
        obs=None,
    ) -> None:
        alert = {
            "type": "alert",
            "sim_time_s": time_s,
            "rule": rule.name,
            "severity": rule.severity,
            "state": state,
            "indicator": rule.indicator,
            "op": rule.op,
            "threshold": rule.threshold,
            "value": value,
        }
        self.alerts.append(alert)
        if obs is not None and getattr(obs, "enabled", False):
            obs.event(
                "slo_alert",
                rule=rule.name,
                severity=rule.severity,
                state=state,
                value=value,
                threshold=rule.threshold,
            )
            obs.count(
                "slo_alert_transitions_total",
                rule=rule.name,
                state=state,
            )

    def evaluate(
        self, time_s: float, snapshot: Dict[str, object], obs=None
    ) -> None:
        """Feed one event-time snapshot through every rule."""
        for rule, state in zip(self.rules, self._states):
            value = _lookup(snapshot, rule.indicator)
            if value is None:
                continue  # indicator not yet defined (e.g. no detections)
            if rule.breached(value):
                state.ok_since = None
                if state.firing:
                    continue
                if state.breach_since is None:
                    state.breach_since = time_s
                if time_s - state.breach_since >= rule.for_s:
                    state.firing = True
                    state.breaches += 1
                    self._transition(time_s, rule, "firing", value, obs)
            else:
                state.breach_since = None
                if not state.firing:
                    continue
                if state.ok_since is None:
                    state.ok_since = time_s
                if time_s - state.ok_since >= rule.clear_for_s:
                    state.firing = False
                    state.ok_since = None
                    self._transition(time_s, rule, "resolved", value, obs)

    # -- reading -------------------------------------------------------- #

    def firing(self) -> List[str]:
        """Names of currently firing rules, in rule order."""
        return [
            rule.name
            for rule, state in zip(self.rules, self._states)
            if state.firing
        ]

    def rule_states(self) -> List[Dict[str, object]]:
        """One canonical dict per rule: definition + current state."""
        out = []
        for rule, state in zip(self.rules, self._states):
            entry = rule.to_dict()
            entry["state"] = "firing" if state.firing else "ok"
            entry["breaches"] = state.breaches
            out.append(entry)
        return out

    def alerts_fired(self) -> int:
        """Alert transitions recorded so far."""
        return len(self.alerts)

    def alert_lines(self, repro_version: str) -> List[str]:
        """The alert stream as canonical JSONL (header + transitions)."""
        header = {
            "type": "header",
            "format": ALERTS_FORMAT,
            "format_version": ALERTS_FORMAT_VERSION,
            "repro_version": repro_version,
            "rules": [rule.name for rule in self.rules],
            "alerts": len(self.alerts),
        }
        rows = [header] + self.alerts
        return [
            json.dumps(row, sort_keys=True, separators=(",", ":"))
            for row in rows
        ]
