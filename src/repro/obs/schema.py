"""Schema validation for the three exporter formats.

Shared by the golden-file tests, the ``repro obs --validate`` CLI, and the
CI artifact job, so "the emitted artifact is well-formed" means the same
thing everywhere.  Validators collect human-readable problems instead of
raising: an empty list means valid.
"""

from __future__ import annotations

import hashlib
import json
import re
from typing import Dict, List, Sequence

from repro.registry import SENSING_PIPELINES as _SENSING_PIPELINES
from repro.registry import STRATEGIES as SWEEP_STRATEGY_NAMES

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_BODY_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*$'
)
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _base_name(name: str, declared: Dict[str, str]) -> str:
    """Map histogram series names back to their declared family."""
    for suffix in _HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if declared.get(base) == "histogram":
                return base
    return name


def validate_prometheus_text(text: str) -> List[str]:
    """Problems with a Prometheus snapshot (empty list = valid)."""
    problems: List[str] = []
    lines = text.splitlines()
    if not lines:
        return ["empty file"]
    if not lines[0].startswith("# repro-obs prometheus snapshot format="):
        problems.append("missing repro-obs snapshot header on line 1")
    if not any(line.startswith("# repro-version: ") for line in lines):
        problems.append("missing '# repro-version:' provenance header")

    declared: Dict[str, str] = {}
    for lineno, line in enumerate(lines, start=1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                kind = parts[3]
                if kind not in ("counter", "gauge", "histogram"):
                    problems.append(f"line {lineno}: unknown TYPE {kind!r}")
                declared[parts[2]] = kind
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        labels = match.group("labels")
        if labels and not _LABEL_BODY_RE.match(labels[1:-1]):
            problems.append(f"line {lineno}: malformed labels {labels!r}")
        value = match.group("value")
        try:
            float(value)
        except ValueError:
            problems.append(f"line {lineno}: non-numeric value {value!r}")
        if _base_name(name, declared) not in declared:
            problems.append(f"line {lineno}: sample {name!r} has no TYPE")
    return problems


def validate_events_jsonl(lines: Sequence[str]) -> List[str]:
    """Problems with a JSONL event stream (empty list = valid)."""
    problems: List[str] = []
    if not lines:
        return ["empty stream"]
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        return [f"line 1: invalid JSON ({exc})"]
    if not isinstance(header, dict) or header.get("type") != "header":
        problems.append("line 1: first record must have type 'header'")
    else:
        if header.get("format") != "repro-obs-events":
            problems.append("line 1: wrong or missing 'format'")
        if not isinstance(header.get("format_version"), int):
            problems.append("line 1: missing integer 'format_version'")
        if not header.get("repro_version"):
            problems.append("line 1: missing 'repro_version'")

    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: invalid JSON ({exc})")
            continue
        if not isinstance(record, dict):
            problems.append(f"line {lineno}: record is not an object")
            continue
        if record.get("type") != "event":
            problems.append(f"line {lineno}: unknown type {record.get('type')!r}")
        if not isinstance(record.get("name"), str):
            problems.append(f"line {lineno}: missing string 'name'")
        if not isinstance(record.get("sim_time_s"), (int, float)):
            problems.append(f"line {lineno}: missing numeric 'sim_time_s'")
    return problems


def validate_chrome_trace(obj: object) -> List[str]:
    """Problems with a Chrome-trace object (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(obj, dict):
        return ["trace is not a JSON object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing 'traceEvents' list"]
    other = obj.get("otherData")
    if not isinstance(other, dict) or not other.get("repro_version"):
        problems.append("missing otherData.repro_version provenance")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing string 'name'")
        ph = event.get("ph")
        if ph not in ("X", "M", "B", "E", "i"):
            problems.append(f"{where}: unsupported phase {ph!r}")
        if ph == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(f"{where}: bad {key!r} {value!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: missing integer {key!r}")
    return problems


def validate_audit_jsonl(lines: Sequence[str]) -> List[str]:
    """Problems with an AuditLog JSONL export (empty list = valid)."""
    problems: List[str] = []
    if not lines:
        return ["empty stream"]
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        return [f"line 1: invalid JSON ({exc})"]
    if not isinstance(header, dict) or header.get("type") != "header":
        problems.append("line 1: first record must have type 'header'")
    elif header.get("format") != "repro-audit":
        problems.append("line 1: wrong or missing 'format'")
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: invalid JSON ({exc})")
            continue
        if not isinstance(record, dict):
            problems.append(f"line {lineno}: record is not an object")
            continue
        if record.get("type") != "decision":
            problems.append(
                f"line {lineno}: unknown type {record.get('type')!r}"
            )
        if not isinstance(record.get("sim_time_s"), (int, float)):
            problems.append(f"line {lineno}: missing numeric 'sim_time_s'")
        if not isinstance(record.get("verdict"), str):
            problems.append(f"line {lineno}: missing string 'verdict'")
    return problems


#: ``SWEEP_STRATEGY_NAMES`` (the strategy names a sweep/tournament row
#: may carry) is an alias into :mod:`repro.registry` — itself
#: stdlib-only, so the schema module stays import-light.

#: Integer-count chaos columns every ok chaos row must carry.
CHAOS_COUNT_COLUMNS = (
    "polls",
    "missed_polls",
    "degraded_samples",
    "false_disables",
    "missed_mitigations",
    "detections",
    "decisions_in_degraded_mode",
    "quarantined_peak",
    "quarantine_violations",
    "capacity_violations",
)


def _chaos_row_problems(chaos: object, lineno: int) -> List[str]:
    """Problems with one ok chaos row's ``chaos`` column block."""
    if not isinstance(chaos, dict):
        return [f"line {lineno}: chaos job missing object 'chaos'"]
    problems: List[str] = []
    if not isinstance(chaos.get("invariants_ok"), bool):
        problems.append(
            f"line {lineno}: chaos block missing boolean 'invariants_ok'"
        )
    if not isinstance(chaos.get("preset"), str):
        problems.append(f"line {lineno}: chaos block missing 'preset'")
    if not isinstance(chaos.get("detection_lag_polls"), (int, float)):
        problems.append(
            f"line {lineno}: chaos block missing numeric "
            "'detection_lag_polls'"
        )
    for key in CHAOS_COUNT_COLUMNS:
        value = chaos.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            problems.append(
                f"line {lineno}: chaos block missing integer {key!r}"
            )
    return problems


#: Keys of the compact per-run health block (HealthReport.row()) with
#: their expected shapes: int counters, numeric-or-null latencies,
#: numeric rates, one boolean verdict.
_HEALTH_ROW_INT_KEYS = (
    "detections",
    "detection_pending",
    "false_disables",
    "quarantine_peak",
    "alerts_fired",
)
_HEALTH_ROW_OPTIONAL_NUM_KEYS = (
    "detection_latency_p50_s",
    "detection_latency_p95_s",
    "ttm_p50_s",
    "ttm_p95_s",
    "headroom_min",
)
_HEALTH_ROW_NUM_KEYS = ("false_disable_rate", "breaker_open_duty")


def _health_row_problems(health: object, where: str) -> List[str]:
    """Problems with one compact ``health`` block (empty list = valid)."""
    if not isinstance(health, dict):
        return [f"{where}: 'health' is not an object"]
    problems: List[str] = []
    for key in _HEALTH_ROW_INT_KEYS:
        value = health.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            problems.append(f"{where}: health missing integer {key!r}")
    for key in _HEALTH_ROW_OPTIONAL_NUM_KEYS:
        value = health.get(key)
        if value is not None and (
            not isinstance(value, (int, float)) or isinstance(value, bool)
        ):
            problems.append(
                f"{where}: health {key!r} must be numeric or null"
            )
    for key in _HEALTH_ROW_NUM_KEYS:
        value = health.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"{where}: health missing numeric {key!r}")
    if not isinstance(health.get("slo_ok"), bool):
        problems.append(f"{where}: health missing boolean 'slo_ok'")
    return problems


#: Integer counters every sweep-row ``diagnosis`` block must carry
#: (DiagnosisStats.row() plus the spec axes stamped by the aggregator).
_DIAGNOSIS_ROW_INT_KEYS = (
    "diagnoses",
    "congestion_mitigations",
    "missed_corrupting",
)


def _diagnosis_row_problems(diagnosis: object, where: str) -> List[str]:
    """Problems with one sweep-row ``diagnosis`` block (empty = valid).

    The block is optional — plain chaos rows (no congestion co-model, no
    miswiring, telemetry sensing) omit it entirely — but when present it
    must carry the sensing/congestion/miswire axes plus the confusion
    counters, and every ``precision_*``/``recall_*`` column must be
    numeric or null (null = cause never seen in truth/verdicts).
    """
    if not isinstance(diagnosis, dict):
        return [f"{where}: 'diagnosis' is not an object"]
    problems: List[str] = []
    if diagnosis.get("sensing") not in _SENSING_PIPELINES:
        problems.append(
            f"{where}: diagnosis has unknown sensing "
            f"{diagnosis.get('sensing')!r}"
        )
    preset = diagnosis.get("congestion_preset")
    if preset is not None and not isinstance(preset, str):
        problems.append(
            f"{where}: diagnosis 'congestion_preset' must be string or null"
        )
    pairs = diagnosis.get("miswire_pairs")
    if not isinstance(pairs, int) or isinstance(pairs, bool) or pairs < 0:
        problems.append(
            f"{where}: diagnosis missing non-negative integer 'miswire_pairs'"
        )
    for key in _DIAGNOSIS_ROW_INT_KEYS:
        value = diagnosis.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            problems.append(f"{where}: diagnosis missing integer {key!r}")
    for key, value in diagnosis.items():
        if not key.startswith(("precision_", "recall_")):
            continue
        if value is not None and (
            not isinstance(value, (int, float)) or isinstance(value, bool)
        ):
            problems.append(
                f"{where}: diagnosis {key!r} must be numeric or null"
            )
    return problems


def _leaderboard_row_problems(record: Dict, lineno: int) -> List[str]:
    """Problems with one ``type="leaderboard"`` tournament row."""
    problems: List[str] = []
    for key in ("preset", "penalty"):
        if not isinstance(record.get(key), str):
            problems.append(f"line {lineno}: leaderboard missing string {key!r}")
    for key in ("capacity", "lg_coverage"):
        if not isinstance(record.get(key), (int, float)):
            problems.append(
                f"line {lineno}: leaderboard missing numeric {key!r}"
            )
    entries = record.get("entries")
    if not isinstance(entries, list) or not entries:
        return problems + [
            f"line {lineno}: leaderboard missing non-empty 'entries'"
        ]
    for position, entry in enumerate(entries):
        where = f"line {lineno}: entries[{position}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: not an object")
            continue
        rank = entry.get("rank")
        if not isinstance(rank, int) or rank != position + 1:
            problems.append(f"{where}: bad rank {rank!r} (want {position + 1})")
        strategy = entry.get("strategy")
        if strategy not in SWEEP_STRATEGY_NAMES:
            problems.append(f"{where}: unknown strategy {strategy!r}")
        if not isinstance(entry.get("mean_penalty_integral"), (int, float)):
            problems.append(f"{where}: missing numeric 'mean_penalty_integral'")
        runs = entry.get("runs")
        if not isinstance(runs, int) or runs <= 0:
            problems.append(f"{where}: missing positive integer 'runs'")
    return problems


#: Numeric health columns every ok per-DCN entry of a fleet roll-up row
#: must carry.
FLEET_DCN_COLUMNS = (
    "penalty_integral",
    "mean_penalty",
    "onsets",
    "disabled_on_onset",
    "repairs_completed",
    "failed_repairs",
    "worst_tor_fraction_min",
)


def _fleet_row_problems(record: Dict, lineno: int) -> List[str]:
    """Problems with one ``type="fleet"`` roll-up row."""
    problems: List[str] = []
    for key in ("dcns", "ok", "failed", "links_design_total"):
        value = record.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            problems.append(f"line {lineno}: fleet missing integer {key!r}")
    for key in ("penalty_integral_total", "onsets_total", "repairs_total"):
        value = record.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"line {lineno}: fleet missing numeric {key!r}")
    health = record.get("health")
    if not isinstance(health, dict):
        problems.append(f"line {lineno}: fleet missing object 'health'")
    else:
        for key in ("healthy_dcns", "degraded_dcns", "failed_dcns"):
            value = health.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                problems.append(
                    f"line {lineno}: fleet health missing integer {key!r}"
                )
    per_dcn = record.get("per_dcn")
    if not isinstance(per_dcn, list) or not per_dcn:
        return problems + [
            f"line {lineno}: fleet missing non-empty 'per_dcn'"
        ]
    if isinstance(record.get("dcns"), int) and len(per_dcn) != record["dcns"]:
        problems.append(
            f"line {lineno}: fleet says dcns={record['dcns']} but "
            f"per_dcn has {len(per_dcn)} entries"
        )
    for position, entry in enumerate(per_dcn):
        where = f"line {lineno}: per_dcn[{position}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(entry.get("dcn"), str):
            problems.append(f"{where}: missing string 'dcn'")
        if entry.get("topo_kind") not in ("clos", "fattree"):
            problems.append(
                f"{where}: bad topo_kind {entry.get('topo_kind')!r}"
            )
        if not isinstance(entry.get("healthy"), bool):
            problems.append(f"{where}: missing boolean 'healthy'")
        status = entry.get("status")
        if status not in ("ok", "failed"):
            problems.append(f"{where}: bad status {status!r}")
        elif status == "ok":
            for key in FLEET_DCN_COLUMNS:
                value = entry.get(key)
                if not isinstance(value, (int, float)) or isinstance(
                    value, bool
                ):
                    problems.append(f"{where}: missing numeric {key!r}")
    return problems


def validate_sweep_jsonl(lines: Sequence[str]) -> List[str]:
    """Problems with a ``repro sweep`` JSONL export (empty list = valid)."""
    problems: List[str] = []
    if not lines:
        return ["empty stream"]
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        return [f"line 1: invalid JSON ({exc})"]
    if not isinstance(header, dict) or header.get("type") != "header":
        problems.append("line 1: first record must have type 'header'")
    else:
        if header.get("format") != "repro-sweep":
            problems.append("line 1: wrong or missing 'format'")
        if not isinstance(header.get("format_version"), int):
            problems.append("line 1: missing integer 'format_version'")
        if not header.get("repro_version"):
            problems.append("line 1: missing 'repro_version'")
        if not isinstance(header.get("jobs_total"), int):
            problems.append("line 1: missing integer 'jobs_total'")
        digest = header.get("grid_digest", "")
        if not (isinstance(digest, str) and digest.startswith("sha256:")):
            problems.append("line 1: missing sha256 'grid_digest'")

    jobs_seen = 0
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: invalid JSON ({exc})")
            continue
        if not isinstance(record, dict):
            problems.append(f"line {lineno}: record is not an object")
            continue
        if record.get("type") == "leaderboard":
            # Tournament files append ranked leaderboard rows after the
            # result rows; they do not count toward jobs_total.
            problems.extend(_leaderboard_row_problems(record, lineno))
            continue
        if record.get("type") == "fleet":
            # Fleet files append one roll-up row after the per-DCN
            # result rows; it does not count toward jobs_total.
            problems.extend(_fleet_row_problems(record, lineno))
            continue
        if record.get("type") != "result":
            problems.append(
                f"line {lineno}: unknown type {record.get('type')!r}"
            )
            continue
        jobs_seen += 1
        if not isinstance(record.get("job"), int):
            problems.append(f"line {lineno}: missing integer 'job'")
        if not isinstance(record.get("spec"), dict):
            problems.append(f"line {lineno}: missing object 'spec'")
        if not isinstance(record.get("seed_used"), int):
            problems.append(f"line {lineno}: missing integer 'seed_used'")
        status = record.get("status")
        if status not in ("ok", "failed"):
            problems.append(f"line {lineno}: bad status {status!r}")
        elif status == "ok" and record.get("spec", {}).get("kind") != (
            "calibrate"
        ):
            for key in ("penalty_integral", "duration_s"):
                if not isinstance(record.get(key), (int, float)):
                    problems.append(
                        f"line {lineno}: ok result missing numeric {key!r}"
                    )
            digest = record.get("series_digest", "")
            if not (isinstance(digest, str) and digest.startswith("sha256:")):
                problems.append(
                    f"line {lineno}: missing sha256 'series_digest'"
                )
            if record.get("spec", {}).get("kind") == "chaos":
                problems.extend(
                    _chaos_row_problems(record.get("chaos"), lineno)
                )
                problems.extend(
                    _health_row_problems(
                        record.get("health"), f"line {lineno}"
                    )
                )
                if "diagnosis" in record:
                    problems.extend(
                        _diagnosis_row_problems(
                            record["diagnosis"], f"line {lineno}"
                        )
                    )
        elif status == "failed":
            error = record.get("error")
            if not (isinstance(error, dict) and error.get("kind")):
                problems.append(
                    f"line {lineno}: failed result missing structured 'error'"
                )
    if isinstance(header, dict) and isinstance(header.get("jobs_total"), int):
        if jobs_seen != header["jobs_total"]:
            problems.append(
                f"header says jobs_total={header['jobs_total']} but stream "
                f"has {jobs_seen} result rows"
            )
    return problems


#: Checkpoint literals, kept inline so the schema module stays
#: import-light; pinned against :mod:`repro.service.checkpoint` by the
#: service tests.
CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_FORMAT_VERSION = 1

#: Service-report literals, pinned against :mod:`repro.service.service`.
SERVICE_REPORT_FORMAT = "repro-service-report"
SERVICE_REPORT_FORMAT_VERSION = 1


def validate_checkpoint_file(path) -> List[str]:
    """Problems with a service checkpoint file (empty list = valid).

    Validates the JSON header (format, version, required fields) and the
    payload integrity (length and SHA-256 digest) **without unpickling**
    — safe to run on untrusted or truncated files.
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        return [f"unreadable: {exc}"]
    newline = raw.find(b"\n")
    if newline < 0:
        return ["no header line (not a checkpoint)"]
    try:
        header = json.loads(raw[:newline].decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        return [f"header line is not JSON ({exc})"]
    if not isinstance(header, dict):
        return ["header is not an object"]
    problems: List[str] = []
    if header.get("format") != CHECKPOINT_FORMAT:
        problems.append(f"wrong or missing 'format' {header.get('format')!r}")
    if header.get("format_version") != CHECKPOINT_FORMAT_VERSION:
        problems.append(
            f"unsupported 'format_version' {header.get('format_version')!r}"
        )
    if not header.get("repro_version"):
        problems.append("missing 'repro_version'")
    if not isinstance(header.get("sim_time_s"), (int, float)):
        problems.append("missing numeric 'sim_time_s'")
    if not isinstance(header.get("boundary_index"), int):
        problems.append("missing integer 'boundary_index'")
    if not isinstance(header.get("config"), dict):
        problems.append("missing object 'config'")
    payload = raw[newline + 1 :]
    if header.get("payload_bytes") != len(payload):
        problems.append(
            f"payload is {len(payload)} bytes, header says "
            f"{header.get('payload_bytes')!r}"
        )
    digest = header.get("state_digest")
    if not isinstance(digest, str):
        problems.append("missing 'state_digest'")
    elif hashlib.sha256(payload).hexdigest() != digest:
        problems.append("state_digest mismatch (corrupt payload)")
    return problems


def validate_service_report_jsonl(lines: Sequence[str]) -> List[str]:
    """Problems with a ``repro serve`` report (empty list = valid)."""
    problems: List[str] = []
    if not lines:
        return ["empty stream"]
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        return [f"line 1: invalid JSON ({exc})"]
    if not isinstance(header, dict) or header.get("type") != "header":
        problems.append("line 1: first record must have type 'header'")
    else:
        if header.get("format") != SERVICE_REPORT_FORMAT:
            problems.append("line 1: wrong or missing 'format'")
        if not isinstance(header.get("format_version"), int):
            problems.append("line 1: missing integer 'format_version'")
        if not header.get("repro_version"):
            problems.append("line 1: missing 'repro_version'")
        if not isinstance(header.get("config"), dict):
            problems.append("line 1: missing object 'config'")
        shards = header.get("shards")
        if not isinstance(shards, int) or shards < 1:
            problems.append("line 1: missing positive integer 'shards'")

    results_seen = 0
    shards_seen = 0
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: invalid JSON ({exc})")
            continue
        if not isinstance(record, dict):
            problems.append(f"line {lineno}: record is not an object")
            continue
        kind = record.get("type")
        if kind == "result":
            results_seen += 1
            for key in ("penalty_integral", "mean_penalty"):
                if not isinstance(record.get(key), (int, float)):
                    problems.append(
                        f"line {lineno}: result missing numeric {key!r}"
                    )
            digest = record.get("fingerprint", "")
            if not (isinstance(digest, str) and digest.startswith("sha256:")):
                problems.append(
                    f"line {lineno}: missing sha256 'fingerprint'"
                )
            if not isinstance(record.get("invariants_ok"), bool):
                problems.append(
                    f"line {lineno}: missing boolean 'invariants_ok'"
                )
            chaos = record.get("chaos")
            if not isinstance(chaos, dict):
                problems.append(f"line {lineno}: missing object 'chaos'")
            else:
                for key in CHAOS_COUNT_COLUMNS:
                    value = chaos.get(key)
                    if not isinstance(value, int) or isinstance(value, bool):
                        problems.append(
                            f"line {lineno}: chaos block missing integer "
                            f"{key!r}"
                        )
            queue = record.get("queue")
            if not isinstance(queue, dict):
                problems.append(f"line {lineno}: missing object 'queue'")
            else:
                if queue.get("accounting_ok") is not True:
                    problems.append(
                        f"line {lineno}: queue accounting not ok"
                    )
                for key in (
                    "offered",
                    "accepted",
                    "deferred",
                    "requeued",
                    "dropped",
                    "drained",
                    "pending",
                    "backpressure_losses",
                ):
                    value = queue.get(key)
                    if not isinstance(value, int) or isinstance(value, bool):
                        problems.append(
                            f"line {lineno}: queue missing integer {key!r}"
                        )
            audit = record.get("audit")
            if not isinstance(audit, dict) or not isinstance(
                audit.get("evicted_decisions"), int
            ):
                problems.append(
                    f"line {lineno}: missing audit.evicted_decisions"
                )
            problems.extend(
                _health_row_problems(record.get("health"), f"line {lineno}")
            )
        elif kind == "shard":
            if record.get("shard") != shards_seen:
                problems.append(
                    f"line {lineno}: shard rows out of order "
                    f"(got {record.get('shard')!r}, want {shards_seen})"
                )
            shards_seen += 1
            if not isinstance(record.get("log"), dict):
                problems.append(f"line {lineno}: shard missing object 'log'")
            for key in ("links", "tors"):
                if not isinstance(record.get(key), int):
                    problems.append(
                        f"line {lineno}: shard missing integer {key!r}"
                    )
        else:
            problems.append(f"line {lineno}: unknown type {kind!r}")
    if results_seen != 1:
        problems.append(f"stream has {results_seen} result rows (want 1)")
    if isinstance(header, dict) and isinstance(header.get("shards"), int):
        if shards_seen != header["shards"]:
            problems.append(
                f"header says shards={header['shards']} but stream has "
                f"{shards_seen} shard rows"
            )
    return problems


def validate_benchmark_record(record: object) -> List[str]:
    """Problems with a machine-readable benchmark result (empty = valid).

    Every ``benchmarks/test_runtime_*`` module writes one of these next to
    its human-readable summary so regressions are diffable by tooling.
    """
    problems: List[str] = []
    if not isinstance(record, dict):
        return ["benchmark record is not a JSON object"]
    if record.get("format") != "repro-benchmark":
        problems.append("wrong or missing 'format' (want 'repro-benchmark')")
    if not isinstance(record.get("format_version"), int):
        problems.append("missing integer 'format_version'")
    if not record.get("repro_version"):
        problems.append("missing 'repro_version'")
    if not isinstance(record.get("name"), str) or not record.get("name"):
        problems.append("missing non-empty string 'name'")
    env = record.get("environment")
    if not isinstance(env, dict) or not isinstance(env.get("cpus"), int):
        problems.append("missing environment.cpus")
    metrics = record.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        problems.append("missing non-empty 'metrics' object")
    else:
        for key, value in metrics.items():
            if not isinstance(value, (int, float, bool)):
                problems.append(f"metrics[{key!r}] is not numeric")
    return problems


#: Health/SLO literals, pinned against :mod:`repro.obs.health` and
#: :mod:`repro.obs.slo` by the health tests.
HEALTH_FORMAT = "repro-health-scorecard"
HEALTH_FORMAT_VERSION = 1
ALERTS_FORMAT = "repro-health-alerts"
ALERTS_FORMAT_VERSION = 1


def validate_health_scorecard(obj: object) -> List[str]:
    """Problems with a health scorecard object (empty list = valid)."""
    if not isinstance(obj, dict):
        return ["scorecard is not a JSON object"]
    problems: List[str] = []
    if obj.get("format") != HEALTH_FORMAT:
        problems.append(f"wrong or missing 'format' {obj.get('format')!r}")
    if obj.get("format_version") != HEALTH_FORMAT_VERSION:
        problems.append(
            f"unsupported 'format_version' {obj.get('format_version')!r}"
        )
    if not obj.get("repro_version"):
        problems.append("missing 'repro_version'")
    sensing = obj.get("sensing")
    if sensing not in ("telemetry", "oracle"):
        problems.append(f"bad 'sensing' {sensing!r}")
    if not isinstance(obj.get("complete"), bool):
        problems.append("missing boolean 'complete'")
    if not isinstance(obj.get("end_s"), (int, float)):
        problems.append("missing numeric 'end_s'")
    fleet = obj.get("fleet")
    if not isinstance(fleet, dict):
        problems.append("missing object 'fleet'")
    elif sensing == "telemetry":
        for section in (
            "detection",
            "mitigation",
            "disables",
            "penalty",
            "capacity",
            "quarantine",
            "breaker",
            "debounce",
        ):
            if not isinstance(fleet.get(section), dict):
                problems.append(f"fleet missing object {section!r}")
        detection = fleet.get("detection")
        if isinstance(detection, dict):
            for key in ("count", "pending", "overdue"):
                value = detection.get(key)
                if not isinstance(value, int) or isinstance(value, bool):
                    problems.append(
                        f"fleet.detection missing integer {key!r}"
                    )
        disables = fleet.get("disables")
        if isinstance(disables, dict):
            rate = disables.get("false_rate")
            if not isinstance(rate, (int, float)) or isinstance(rate, bool):
                problems.append("fleet.disables missing numeric 'false_rate'")
    shards = obj.get("shards")
    if not isinstance(shards, list):
        problems.append("missing list 'shards'")
    else:
        for index, shard in enumerate(shards):
            if not isinstance(shard, dict) or shard.get("shard") != index:
                problems.append(f"shards[{index}]: bad or out-of-order row")
    links = obj.get("links")
    if not isinstance(links, list):
        problems.append("missing list 'links'")
    else:
        for index, link in enumerate(links):
            if not isinstance(link, dict) or not isinstance(
                link.get("link"), str
            ):
                problems.append(f"links[{index}]: missing string 'link'")
            elif not isinstance(link.get("onset_s"), (int, float)):
                problems.append(f"links[{index}]: missing numeric 'onset_s'")
    if not isinstance(obj.get("links_omitted"), int):
        problems.append("missing integer 'links_omitted'")
    slo = obj.get("slo")
    if not isinstance(slo, dict):
        problems.append("missing object 'slo'")
    else:
        if not isinstance(slo.get("rules"), list):
            problems.append("slo missing list 'rules'")
        if not isinstance(slo.get("alerts"), list):
            problems.append("slo missing list 'alerts'")
        elif slo.get("alerts_fired") != len(slo["alerts"]):
            problems.append(
                "slo.alerts_fired disagrees with len(slo.alerts)"
            )
        if not isinstance(slo.get("ok"), bool):
            problems.append("slo missing boolean 'ok'")
        for index, rule in enumerate(slo.get("rules") or []):
            if not isinstance(rule, dict) or rule.get("state") not in (
                "ok",
                "firing",
            ):
                problems.append(f"slo.rules[{index}]: bad 'state'")
    return problems


def validate_alerts_jsonl(lines: Sequence[str]) -> List[str]:
    """Problems with an SLO alert stream (empty list = valid)."""
    problems: List[str] = []
    if not lines:
        return ["empty stream"]
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        return [f"line 1: invalid JSON ({exc})"]
    declared_alerts = None
    if not isinstance(header, dict) or header.get("type") != "header":
        problems.append("line 1: first record must have type 'header'")
    else:
        if header.get("format") != ALERTS_FORMAT:
            problems.append("line 1: wrong or missing 'format'")
        if header.get("format_version") != ALERTS_FORMAT_VERSION:
            problems.append("line 1: unsupported 'format_version'")
        if not header.get("repro_version"):
            problems.append("line 1: missing 'repro_version'")
        if not isinstance(header.get("rules"), list):
            problems.append("line 1: missing list 'rules'")
        declared_alerts = header.get("alerts")
        if not isinstance(declared_alerts, int):
            problems.append("line 1: missing integer 'alerts'")
            declared_alerts = None

    alerts_seen = 0
    last_time = None
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: invalid JSON ({exc})")
            continue
        if not isinstance(record, dict) or record.get("type") != "alert":
            problems.append(f"line {lineno}: not an alert record")
            continue
        alerts_seen += 1
        time_s = record.get("sim_time_s")
        if not isinstance(time_s, (int, float)):
            problems.append(f"line {lineno}: missing numeric 'sim_time_s'")
        elif last_time is not None and time_s < last_time:
            problems.append(f"line {lineno}: alerts out of event-time order")
        else:
            last_time = time_s
        if not isinstance(record.get("rule"), str):
            problems.append(f"line {lineno}: missing string 'rule'")
        if record.get("state") not in ("firing", "resolved"):
            problems.append(
                f"line {lineno}: bad state {record.get('state')!r}"
            )
        if record.get("severity") not in ("info", "warning", "critical"):
            problems.append(
                f"line {lineno}: bad severity {record.get('severity')!r}"
            )
        value = record.get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"line {lineno}: missing numeric 'value'")
    if declared_alerts is not None and alerts_seen != declared_alerts:
        problems.append(
            f"header says alerts={declared_alerts} but stream has "
            f"{alerts_seen} alert rows"
        )
    return problems


#: Benchmark-trajectory literals, pinned against :mod:`repro.benchtrack`.
BENCH_TRAJECTORY_FORMAT = "repro-bench-trajectory"
BENCH_TRAJECTORY_FORMAT_VERSION = 1


def validate_bench_trajectory(obj: object) -> List[str]:
    """Problems with a benchmark trajectory file (empty list = valid)."""
    if not isinstance(obj, dict):
        return ["trajectory is not a JSON object"]
    problems: List[str] = []
    if obj.get("format") != BENCH_TRAJECTORY_FORMAT:
        problems.append(f"wrong or missing 'format' {obj.get('format')!r}")
    if obj.get("format_version") != BENCH_TRAJECTORY_FORMAT_VERSION:
        problems.append(
            f"unsupported 'format_version' {obj.get('format_version')!r}"
        )
    if not obj.get("repro_version"):
        problems.append("missing 'repro_version'")
    benchmarks = obj.get("benchmarks")
    if not isinstance(benchmarks, dict) or not benchmarks:
        problems.append("missing non-empty object 'benchmarks'")
        benchmarks = {}
    for name, entry in benchmarks.items():
        where = f"benchmarks[{name!r}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: not an object")
            continue
        metrics = entry.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            problems.append(f"{where}: missing non-empty 'metrics'")
            continue
        for key, value in metrics.items():
            if not isinstance(value, (int, float, bool)):
                problems.append(f"{where}: metrics[{key!r}] is not numeric")
        runtime = entry.get("runtime_metrics")
        if not isinstance(runtime, list):
            problems.append(f"{where}: missing list 'runtime_metrics'")
        else:
            for key in runtime:
                if key not in metrics:
                    problems.append(
                        f"{where}: runtime metric {key!r} not in metrics"
                    )
    baseline = obj.get("baseline")
    if not isinstance(baseline, dict):
        problems.append("missing object 'baseline'")
    else:
        for name, entry in baseline.items():
            where = f"baseline[{name!r}]"
            if not isinstance(entry, dict):
                problems.append(f"{where}: not an object")
                continue
            for key, value in entry.items():
                if not isinstance(value, (int, float)) or isinstance(
                    value, bool
                ):
                    problems.append(f"{where}: {key!r} is not numeric")
    return problems
