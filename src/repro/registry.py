"""One registry for every by-name preset the system accepts.

Strategy, penalty, scenario-preset, chaos-preset, congestion-preset,
sensing-pipeline, topology-kind and job-kind names were historically
declared in at least three places each (``cli.py`` argparse choices,
``parallel/spec.py`` KNOWN_* literals, and the defining modules), kept
in sync only by convention.  This module is now the single source of
truth: deliberately import-light (stdlib only) so ``--help`` and spec
validation never pay for the simulation stack, and pinned against the
live defining dicts by ``tests/test_registry.py`` so a preset added in
one place cannot silently go missing from another.

Unknown names are rejected loudly through :func:`require`, which every
consumer shares so error messages look the same everywhere.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

#: Every runnable mitigation strategy (§7.1 lineup + §8 drain + the
#: LinkGuardian rivals).  Pinned against
#: ``repro.simulation.strategies.STRATEGY_NAMES``.
STRATEGIES: Tuple[str, ...] = (
    "corropt",
    "fast-checker-only",
    "switch-local",
    "none",
    "drain",
    "linkguardian",
    "lg+corropt",
)

#: Per-strategy tuning knobs accepted by ``build_strategy``.  Pinned
#: against ``repro.simulation.strategies.STRATEGY_KNOBS``.
STRATEGY_KNOBS: Dict[str, FrozenSet[str]] = {
    "corropt": frozenset(),
    "fast-checker-only": frozenset(),
    "switch-local": frozenset({"sc"}),
    "none": frozenset(),
    "drain": frozenset(),
    "linkguardian": frozenset({"max_loss_rate"}),
    "lg+corropt": frozenset({"max_loss_rate"}),
}

#: Penalty functions ``I(f)`` addressable by name.  Pinned against
#: ``repro.core.penalty.PENALTY_NAMES``.
PENALTIES: Tuple[str, ...] = ("linear", "tcp-throughput", "step")

#: Built-in DCN scenario presets (resolved in ``repro.parallel.worker``).
SCENARIO_PRESETS: Tuple[str, ...] = ("medium", "large")

#: Telemetry-fault presets for chaos runs.  Pinned against
#: ``repro.simulation.chaos.CHAOS_PRESETS``.
CHAOS_PRESETS: Tuple[str, ...] = (
    "none",
    "mild",
    "harsh",
    "reboot-storm",
    "flaky-collector",
)

#: Congestion co-model presets (§3: queue-induced loss correlated with
#: utilization, no FCS signature).  Pinned against
#: ``repro.congestion.presets.CONGESTION_PRESETS``.
CONGESTION_PRESETS: Tuple[str, ...] = ("none", "hotspots", "incast")

#: Sensing pipelines a chaos/localization job may run: per-link SNMP
#: counters (``telemetry``) or the 007-style per-flow voting localizer
#: (``voting``).
SENSING_PIPELINES: Tuple[str, ...] = ("telemetry", "voting")

#: Topology families (plane-wired Clos vs k-ary fat-tree).
TOPO_KINDS: Tuple[str, ...] = ("clos", "fattree")

#: Job kinds the parallel runner executes.
JOB_KINDS: Tuple[str, ...] = ("simulate", "chaos", "calibrate")

#: Every group addressable by :func:`require`.
GROUPS: Dict[str, Tuple[str, ...]] = {
    "strategy": STRATEGIES,
    "penalty": PENALTIES,
    "preset": SCENARIO_PRESETS,
    "chaos_preset": CHAOS_PRESETS,
    "congestion_preset": CONGESTION_PRESETS,
    "sensing": SENSING_PIPELINES,
    "topo_kind": TOPO_KINDS,
    "kind": JOB_KINDS,
}


def require(group: str, name: str) -> str:
    """Return ``name`` if registered under ``group``; raise loudly if not.

    The shared rejection path for every by-name lookup, so a typo'd
    preset fails the same way from the CLI, a grid JSON, or a pickled
    spec: ``ValueError`` naming the group and the full legal set.
    """
    try:
        known = GROUPS[group]
    except KeyError:
        raise ValueError(
            f"unknown registry group {group!r}; "
            f"choose from {sorted(GROUPS)}"
        ) from None
    if name not in known:
        raise ValueError(
            f"unknown {group} {name!r}; choose from {sorted(known)}"
        )
    return name
