"""Spatial locality of lossy links (§3, Figure 4).

The paper's metric: take the worst ``w`` fraction of lossy links, compute
the fraction ``x`` of switches containing at least one of them, then
simulate the same number of links spread uniformly at random and compute
the fraction ``y`` of switches they would touch.  The ratio ``x / y`` is 1
for a random spread and smaller the more the links co-locate.  Congestion
lands near 0.2 (strong locality); corruption near 0.8 (weak locality).
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.workloads.rates import LOSSY_THRESHOLD
from repro.workloads.study import DcnStudy, StudyDataset


def _switches_of_links(
    dcn: DcnStudy, link_ids: Sequence
) -> set:
    switches = set()
    for lid in link_ids:
        lower, upper = dcn.link_endpoints[lid]
        switches.add(lower)
        switches.add(upper)
    return switches


def worst_links(
    dcn: DcnStudy, kind: str, worst_fraction: float
) -> List:
    """The worst ``worst_fraction`` of lossy links of one type, by rate."""
    if not 0.0 < worst_fraction <= 1.0:
        raise ValueError("worst_fraction must be in (0, 1]")
    lossy = [
        record
        for record in dcn.records_of_kind(kind)
        if record.mean_loss() >= LOSSY_THRESHOLD
    ]
    lossy.sort(key=lambda r: r.mean_loss(), reverse=True)
    count = max(1, int(round(len(lossy) * worst_fraction)))
    # A link may appear once per direction; dedupe by link id.
    seen, links = set(), []
    for record in lossy:
        if record.link_id not in seen:
            seen.add(record.link_id)
            links.append(record.link_id)
        if len(links) >= count:
            break
    return links


def locality_ratio(
    dcn: DcnStudy,
    kind: str,
    worst_fraction: float = 0.1,
    trials: int = 20,
    seed: int = 0,
) -> float:
    """The x/y switch-fraction ratio for one DCN.

    Args:
        dcn: The DCN's study data.
        kind: "corruption" or "congestion".
        worst_fraction: Which tail of the loss distribution to examine.
        trials: Monte-Carlo repetitions for the random baseline ``y``.
        seed: Baseline RNG seed.

    Returns:
        ``x / y``; 1.0 when the DCN has no lossy links of this kind.
    """
    links = worst_links(dcn, kind, worst_fraction)
    if not links:
        return 1.0
    x = len(_switches_of_links(dcn, links)) / dcn.num_switches

    rng = random.Random(seed)
    all_links = sorted(dcn.link_endpoints)
    y_total = 0.0
    for _ in range(trials):
        sample = rng.sample(all_links, min(len(links), len(all_links)))
        y_total += len(_switches_of_links(dcn, sample)) / dcn.num_switches
    y = y_total / trials
    if y == 0.0:
        return 1.0
    return x / y


def locality_curve(
    dataset: StudyDataset,
    kind: str,
    fractions: Sequence[float] = None,
    trials: int = 20,
    seed: int = 0,
) -> List[Tuple[float, float]]:
    """Figure 4: mean locality ratio across DCNs per worst-fraction value.

    The paper sweeps 100 fraction values in (0, 1]; the default here uses a
    coarser grid that captures the same curve shape.
    """
    if fractions is None:
        fractions = [0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0]
    curve = []
    for fraction in fractions:
        ratios = [
            locality_ratio(dcn, kind, fraction, trials=trials, seed=seed)
            for dcn in dataset.dcns
            if dcn.records_of_kind(kind)
        ]
        mean_ratio = sum(ratios) / len(ratios) if ratios else 1.0
        curve.append((fraction, mean_ratio))
    return curve
