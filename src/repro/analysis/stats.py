"""Core measurement-study statistics (§2–3).

Functions here reduce a :class:`~repro.workloads.study.StudyDataset` to the
quantities the paper's tables and figures report: loss-bucket shares
(Table 1), coefficient-of-variation distributions (Figure 2b), Pearson
correlation distributions (Figure 3b), and the per-stage corruption
probability (§3's "corruption is uncorrelated with link location").
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.workloads.rates import BUCKET_EDGES, LOSSY_THRESHOLD, bucket_shares
from repro.workloads.study import LinkStudyRecord, StudyDataset


def mean_rates(records: Sequence[LinkStudyRecord]) -> List[float]:
    """Mean loss rate of each record's primary direction."""
    return [record.mean_loss() for record in records]


def loss_bucket_table(
    dataset: StudyDataset,
) -> Dict[str, List[float]]:
    """Table 1: normalized loss-bucket shares per loss type.

    Returns:
        ``{"corruption": [...4 shares...], "congestion": [...]}`` over
        the buckets [1e-8,1e-5), [1e-5,1e-4), [1e-4,1e-3), [1e-3,+).
    """
    return {
        kind: bucket_shares(
            mean_rates(dataset.all_records(kind)), BUCKET_EDGES
        )
        for kind in ("corruption", "congestion")
    }


def lossy_link_counts(dataset: StudyDataset) -> Dict[str, int]:
    """Number of lossy links per loss type (for the §3 2–4% claim)."""
    return {
        kind: sum(
            1
            for record in dataset.all_records(kind)
            if record.mean_loss() >= LOSSY_THRESHOLD
        )
        for kind in ("corruption", "congestion")
    }


def corruption_to_congestion_link_ratio(dataset: StudyDataset) -> float:
    """|corrupting links| / |congested links| (§3: "less than 2–4%")."""
    counts = lossy_link_counts(dataset)
    if counts["congestion"] == 0:
        return float("inf")
    return counts["corruption"] / counts["congestion"]


def _cv(values: np.ndarray) -> float:
    mean = float(np.mean(values))
    if mean == 0.0:
        return 0.0
    return float(np.std(values)) / mean


def cv_distribution(dataset: StudyDataset, kind: str) -> List[float]:
    """Coefficient of variation of each lossy link's loss series (Fig 2b)."""
    return [
        _cv(record.loss)
        for record in dataset.all_records(kind)
        if record.mean_loss() >= LOSSY_THRESHOLD
    ]


def pearson_log_loss_vs_utilization(record: LinkStudyRecord) -> float:
    """Pearson correlation between utilization and log10(loss) (Fig 3).

    Zeros in the loss series are floored at 1e-10 before the logarithm;
    constant series yield correlation 0.
    """
    loss = np.log10(np.maximum(record.loss, 1e-10))
    util = record.utilization
    if np.std(loss) == 0.0 or np.std(util) == 0.0:
        return 0.0
    return float(np.corrcoef(util, loss)[0, 1])


def pearson_distribution(dataset: StudyDataset, kind: str) -> List[float]:
    """Per-link Pearson correlations for one loss type (Figure 3b)."""
    return [
        pearson_log_loss_vs_utilization(record)
        for record in dataset.all_records(kind)
        if record.mean_loss() >= LOSSY_THRESHOLD
    ]


def mean_pearson(dataset: StudyDataset, kind: str) -> float:
    """Mean Pearson correlation (paper: 0.19 corruption, 0.62 congestion)."""
    values = pearson_distribution(dataset, kind)
    return float(np.mean(values)) if values else 0.0


def stage_loss_shares(
    dataset: StudyDataset, kind: str
) -> Dict[int, float]:
    """Share of lossy links per topology stage (§3 location analysis).

    Stage 0 is the ToR–aggregation tier, stage 1 the aggregation–spine
    tier.  Corruption should show no stage bias; congestion avoids stages
    whose egress switches have deep buffers.
    """
    counts: Dict[int, int] = {}
    total = 0
    for record in dataset.all_records(kind):
        if record.mean_loss() < LOSSY_THRESHOLD:
            continue
        counts[record.stage] = counts.get(record.stage, 0) + 1
        total += 1
    if total == 0:
        return {}
    return {stage: count / total for stage, count in counts.items()}


def stage_link_shares(dataset: StudyDataset) -> Dict[int, float]:
    """Share of *all* links per stage (the unbiased reference)."""
    counts: Dict[int, int] = {}
    total = 0
    for dcn in dataset.dcns:
        for lower, _upper in dcn.link_endpoints.values():
            stage = dcn.stage_of_switch.get(lower, 0)
            counts[stage] = counts.get(stage, 0) + 1
            total += 1
    if total == 0:
        return {}
    return {stage: count / total for stage, count in counts.items()}


def summarize_distribution(values: Sequence[float]) -> Tuple[float, float, float]:
    """(mean, median, 80th percentile) of a distribution."""
    if not values:
        return (0.0, 0.0, 0.0)
    arr = np.asarray(values, dtype=float)
    return (
        float(np.mean(arr)),
        float(np.median(arr)),
        float(np.percentile(arr, 80)),
    )
