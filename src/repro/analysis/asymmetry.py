"""Directional asymmetry of losses (§3, Figure 5).

Corruption is asymmetric: only ~8.2% of corrupting links corrupt in both
directions (most root causes act on one unidirectional fiber/connector).
Congestion is mostly bidirectional (~72.7%), which the paper attributes to
failures that cut capacity for both upstream and downstream traffic.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.workloads.rates import LOSSY_THRESHOLD
from repro.workloads.study import StudyDataset


def bidirectional_share(
    dataset: StudyDataset, kind: str, threshold: float = LOSSY_THRESHOLD
) -> float:
    """Fraction of lossy links whose *both* directions are lossy."""
    lossy = 0
    bidirectional = 0
    for record in dataset.all_records(kind):
        if record.mean_loss() < threshold:
            continue
        lossy += 1
        if record.is_bidirectional(threshold):
            bidirectional += 1
    if lossy == 0:
        return 0.0
    return bidirectional / lossy


def bidirectional_pairs(
    dataset: StudyDataset, kind: str, threshold: float = LOSSY_THRESHOLD
) -> List[Tuple[float, float]]:
    """(forward mean rate, reverse mean rate) for bidirectionally lossy
    links — Figure 5's scatter points."""
    pairs = []
    for record in dataset.all_records(kind):
        if record.rev_loss is None:
            continue
        fwd = record.mean_loss()
        rev = float(np.mean(record.rev_loss))
        if fwd >= threshold and rev >= threshold:
            pairs.append((fwd, rev))
    return pairs


def direction_similarity(pairs: List[Tuple[float, float]]) -> float:
    """Mean |log10(fwd/rev)| over bidirectional pairs.

    Small values mean the two directions lose at similar rates — the
    clustered-diagonal pattern Figure 5b shows for congestion; corruption's
    sparse bidirectional pairs are more scattered.
    """
    if not pairs:
        return 0.0
    logs = [abs(np.log10(f) - np.log10(r)) for f, r in pairs if f > 0 and r > 0]
    return float(np.mean(logs)) if logs else 0.0
