"""Measurement-study analyses (§2–3): the reductions behind every figure.

- :mod:`repro.analysis.stats` — Table 1 buckets, CV (Fig 2b), Pearson
  (Fig 3b), stage location;
- :mod:`repro.analysis.locality` — Figure 4's x/y locality ratio;
- :mod:`repro.analysis.asymmetry` — Figure 5's bidirectional shares;
- :mod:`repro.analysis.comparison` — Figure 1's normalized loss volumes.
"""

from repro.analysis.asymmetry import (
    bidirectional_pairs,
    bidirectional_share,
    direction_similarity,
)
from repro.analysis.comparison import (
    Figure1Row,
    aggregate_loss_parity,
    figure1_rows,
    total_loss_ratio,
)
from repro.analysis.locality import locality_curve, locality_ratio, worst_links
from repro.analysis.stats import (
    corruption_to_congestion_link_ratio,
    cv_distribution,
    loss_bucket_table,
    lossy_link_counts,
    mean_pearson,
    mean_rates,
    pearson_distribution,
    pearson_log_loss_vs_utilization,
    stage_link_shares,
    stage_loss_shares,
    summarize_distribution,
)

__all__ = [
    "Figure1Row",
    "aggregate_loss_parity",
    "bidirectional_pairs",
    "bidirectional_share",
    "corruption_to_congestion_link_ratio",
    "cv_distribution",
    "direction_similarity",
    "figure1_rows",
    "locality_curve",
    "locality_ratio",
    "loss_bucket_table",
    "lossy_link_counts",
    "mean_pearson",
    "mean_rates",
    "pearson_distribution",
    "pearson_log_loss_vs_utilization",
    "stage_link_shares",
    "stage_loss_shares",
    "summarize_distribution",
    "total_loss_ratio",
    "worst_links",
]
