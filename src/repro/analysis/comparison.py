"""Corruption vs. congestion loss volumes (§2, Figure 1).

Figure 1 plots, per DCN (sorted by size), the mean and standard deviation
of packets lost per day to corruption, normalized by the DCN's mean daily
congestion losses.  "In aggregate, the number of corruption losses is on
par with congestion losses."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.workloads.study import DcnStudy, StudyDataset


@dataclass
class Figure1Row:
    """One DCN's bar in Figure 1.

    Attributes:
        dcn: DCN name.
        num_links: DCN size (the sort key).
        mean_ratio: Mean daily corruption losses / mean daily congestion
            losses.
        std_ratio: Std-dev of the daily corruption losses, same
            normalization (the error bar).
    """

    dcn: str
    num_links: int
    mean_ratio: float
    std_ratio: float


def _daily_losses(dcn: DcnStudy, kind: str, samples_per_day: int) -> np.ndarray:
    """Absolute packets lost per day for one loss type."""
    records = dcn.records_of_kind(kind)
    if not records:
        return np.zeros(1)
    num_samples = len(records[0].loss)
    total = np.zeros(num_samples)
    for record in records:
        packets = record.utilization * dcn.capacity_pkts_per_interval
        total += record.loss * packets
    num_days = max(1, num_samples // samples_per_day)
    return np.array(
        [
            float(
                np.sum(total[d * samples_per_day : (d + 1) * samples_per_day])
            )
            for d in range(num_days)
        ]
    )


def figure1_rows(
    dataset: StudyDataset, samples_per_day: int = 96
) -> List[Figure1Row]:
    """Compute Figure 1's per-DCN normalized loss ratios, sorted by size."""
    rows = []
    for dcn in dataset.dcns:
        corruption = _daily_losses(dcn, "corruption", samples_per_day)
        congestion = _daily_losses(dcn, "congestion", samples_per_day)
        mean_congestion = float(np.mean(congestion))
        if mean_congestion <= 0:
            mean_ratio, std_ratio = float("inf"), 0.0
        else:
            mean_ratio = float(np.mean(corruption)) / mean_congestion
            std_ratio = float(np.std(corruption)) / mean_congestion
        rows.append(
            Figure1Row(
                dcn=dcn.name,
                num_links=dcn.num_links,
                mean_ratio=mean_ratio,
                std_ratio=std_ratio,
            )
        )
    rows.sort(key=lambda row: row.num_links)
    return rows


def total_loss_ratio(dataset: StudyDataset, samples_per_day: int = 96) -> float:
    """Aggregate corruption losses / aggregate congestion losses.

    §2's headline is aggregate parity ("in aggregate, the number of
    corruption losses is on par with congestion losses"); summing across
    DCNs is far less sensitive to per-DCN heavy-tail sampling noise than
    the per-DCN ratios of Figure 1.
    """
    corruption = sum(
        float(np.sum(_daily_losses(dcn, "corruption", samples_per_day)))
        for dcn in dataset.dcns
    )
    congestion = sum(
        float(np.sum(_daily_losses(dcn, "congestion", samples_per_day)))
        for dcn in dataset.dcns
    )
    if congestion <= 0:
        return float("inf")
    return corruption / congestion


def aggregate_loss_parity(rows: List[Figure1Row]) -> float:
    """Geometric-mean corruption/congestion ratio across DCNs.

    The paper's headline claim is parity ("for every congestion loss ...
    they will experience a corruption loss"); a geometric mean near 1 is
    the corresponding summary.
    """
    finite = [row.mean_ratio for row in rows if np.isfinite(row.mean_ratio)]
    positive = [r for r in finite if r > 0]
    if not positive:
        return 0.0
    return float(np.exp(np.mean(np.log(positive))))
