"""Reproduction of *Understanding and Mitigating Packet Corruption in Data
Center Networks* (Zhuo et al., SIGCOMM 2017).

This package implements, from scratch:

- the **CorrOpt** mitigation system (fast checker, global optimizer,
  switch-local baseline, repair recommendation engine, controller);
- every substrate the paper depends on: staged Clos/fat-tree topologies,
  an SNMP-style telemetry simulator, an optical-layer fault model with the
  paper's five root causes, corruption/congestion trace generators, a
  maintenance-ticket/technician model, and an event-driven mitigation
  simulator;
- the measurement-study analyses of the paper's §2–4 (loss buckets,
  stability, utilization correlation, locality, asymmetry, root causes);
- the Appendix-A NP-completeness reduction from 3-SAT.

Typical entry points:

>>> from repro import topology, core, simulation
>>> topo = topology.build_clos(num_pods=4, tors_per_pod=4,
...                            aggs_per_pod=4, num_spines=8)
>>> checker = core.FastChecker(topo, core.CapacityConstraint(0.75))
"""

from repro._version import __version__  # noqa: F401
from repro import (  # noqa: F401
    analysis,
    routing,
    congestion,
    core,
    faults,
    obs,
    optics,
    simulation,
    telemetry,
    theory,
    ticketing,
    topology,
    workloads,
)

__all__ = [
    "analysis",
    "congestion",
    "core",
    "faults",
    "obs",
    "optics",
    "routing",
    "simulation",
    "telemetry",
    "theory",
    "ticketing",
    "topology",
    "workloads",
    "__version__",
]
