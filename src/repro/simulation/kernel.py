"""The unified event-driven simulation kernel.

One loop, two senses.  The paper's evaluation (§7) and the chaos
extension exercise the *same* mitigation loop — corruption onsets,
checker/optimizer decisions, ticketing, repair completions, penalty
accounting — but until this module the repo maintained it twice: the
event-driven ``MitigationSimulation`` and the tick-based
``ChaosSimulation`` each owned a private heap, repair scheduler and
snapshot bookkeeping.  :class:`SimulationKernel` owns all of that once,
parameterized by a :class:`SensingPipeline` that decides how the world is
*observed*:

- :class:`OracleSensing` — ground-truth onsets reach the strategy
  directly (the §7.1 apparatus);
- :class:`TelemetrySensing` — nothing reaches the controller except via
  poller → (fault-injected transport) → sanitizer → store → detection →
  hardened controller (the chaos apparatus), with polls as first-class
  heap events instead of a fixed tick loop.

Event model
-----------

Heap entries are ``(time_s, kind, subkey, tie, payload)`` tuples:

- ``time_s`` — when the kernel *processes* the event.  Pipelines may
  quantize via :meth:`SensingPipeline.event_time`: oracle sensing is the
  identity; telemetry sensing rounds up to the next poll tick (a
  poll-driven system cannot react between polls) and drops events beyond
  the last tick, reproducing the historical tick loop exactly.
- ``kind`` — ``EVENT_ONSET < EVENT_REPAIR < EVENT_POOL_CHECK <
  EVENT_POLL``; at equal times, ground truth is updated before repairs
  complete, and both before the poll observes the world.
- ``subkey`` — the *requested* (pre-quantization) time, so co-quantized
  events keep their true causal order.
- ``tie`` — monotone counter, making heap order total and deterministic
  (and equal to insertion order as the final tiebreak).

Bit-compatibility contract: runs through the kernel are bit-identical to
the pre-kernel loops — pinned by tests/simulation/test_golden_equivalence
and the committed fig17/fig18 reports.
"""

from __future__ import annotations

import heapq
import itertools
import random
from bisect import bisect_left
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.controller import CorrOptController
from repro.core.diagnosis import (
    CAUSE_BOTH,
    CAUSE_CONGESTION,
    CAUSE_CORRUPTION,
    CAUSE_MISWIRED,
    CAUSE_UNKNOWN,
    CauseClassifier,
    DiagnosisStats,
    LinkDiagnosis,
)
from repro.core.path_counting import PathCounter
from repro.core.penalty import PenaltyFn, linear_penalty
from repro.core.resilience import (
    AuditLog,
    BreakerState,
    CircuitBreaker,
    OnsetDebouncer,
)
from repro.faults.telemetry_faults import FaultyTransport, TelemetryFaultConfig
from repro.obs.health import HealthTracker
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.simulation.metrics import ChaosMetrics, SimulationMetrics
from repro.simulation.results import RunResult
from repro.simulation.strategies import MitigationStrategy
from repro.telemetry.poller import SnmpPoller
from repro.telemetry.sanitizer import TelemetrySanitizer
from repro.telemetry.store import TelemetryStore
from repro.ticketing.queue import TechnicianPoolQueue
from repro.ticketing.ticket import Ticket
from repro.topology.elements import Direction, LinkId
from repro.topology.graph import Topology
from repro.workloads.trace import CorruptionTrace

DAY_S = 86_400.0

#: Event kinds, in their at-equal-time processing order.
EVENT_ONSET, EVENT_REPAIR, EVENT_POOL_CHECK, EVENT_POLL = 0, 1, 2, 3

KIND_NAMES = {
    EVENT_ONSET: "onset",
    EVENT_REPAIR: "repair",
    EVENT_POOL_CHECK: "pool-check",
    EVENT_POLL: "poll",
}


class SensingPipeline:
    """How a kernel run observes the world and reacts to it.

    A pipeline owns everything *perception-side*: what an onset does to
    the observable state, how (and whether) it is detected, what penalty
    the run records, and which extra result sections the
    :class:`~repro.simulation.results.RunResult` carries.  The kernel
    owns everything *mechanics-side*: the heap, repair/pool scheduling,
    the repair RNG, and metric snapshots.

    To add a third sensing backend, subclass this, implement the
    ``handle_*`` hooks plus :meth:`current_penalty`, and declare
    ``span_names`` / ``snapshot_kinds``; see DESIGN.md §11.
    """

    #: Observability category for event spans.
    span_cat: str = "kernel"
    #: Per-kind span names for the kinds this pipeline schedules.
    span_names: Dict[int, str] = KIND_NAMES
    #: Kinds after which the kernel records a metrics snapshot (only for
    #: events inside the run window).
    snapshot_kinds: FrozenSet[int] = frozenset(
        (EVENT_ONSET, EVENT_REPAIR, EVENT_POOL_CHECK, EVENT_POLL)
    )
    #: Strategy label stamped on the result.
    strategy_name: str = ""

    kernel: "SimulationKernel"

    def attach(self, kernel: "SimulationKernel") -> None:
        """Bind to the kernel (topology, RNG, metrics, recorder)."""
        self.kernel = kernel

    def bootstrap(self) -> None:
        """Schedule the initial event population (trace onsets, polls)."""

    def event_time(self, time_s: float) -> Optional[float]:
        """Map a requested event time to its processing time.

        Return ``None`` to drop the event (it can never be processed —
        e.g. it lands beyond the last poll of a poll-driven run)."""
        return time_s

    # -- event hooks ---------------------------------------------------- #

    def handle_onset(self, time_s: float, event) -> None:
        raise NotImplementedError

    def handle_repair(self, time_s: float, link_id: LinkId) -> None:
        raise NotImplementedError

    def handle_poll(self, time_s: float) -> None:
        raise NotImplementedError

    def pool_repair_succeeded(self, time_s: float, link_id: LinkId) -> None:
        """A technician-pool visit fixed ``link_id`` (oracle-only today)."""
        raise NotImplementedError

    # -- snapshot hooks ------------------------------------------------- #

    def current_penalty(self) -> float:
        raise NotImplementedError

    def tor_fractions(self) -> Optional[Tuple[float, float]]:
        """(worst, average) ToR path fractions, or ``None`` to skip."""
        return None

    def after_snapshot(self, time_s: float, worst: float) -> None:
        """Post-snapshot bookkeeping (e.g. capacity-violation checks)."""

    # -- run end -------------------------------------------------------- #

    def finish(self) -> None:
        """End-of-run accounting before the result is assembled."""

    def result_sections(self) -> Dict[str, object]:
        """Extra :class:`RunResult` fields contributed by this pipeline."""
        return {}


class SimulationKernel:
    """One event heap, one repair model, one snapshot path.

    Args:
        topo: Topology (mutated during the run; pass a copy to reuse).
        duration_s: Run window; events past it still process (repairs
            landing late still restore the topology) but are not
            snapshotted, keeping the metric series consistent with
            ``penalty_integral`` (which clips to the window).
        pipeline: The sensing pipeline (attached on construction).
        repair_accuracy: First-attempt repair success probability.
        service_s: Ticket service time per attempt (§5.2: two days).
        seed: RNG seed for repair outcomes.
        full_repair_cycles: Simulate failed repairs as re-enable →
            re-detect → re-disable cycles (Figure 12) instead of folding
            them into a doubled service time.
        technician_pool: When set, repairs flow through a FIFO queue
            drained by this many technicians; failed repairs resubmit
            the ticket for another service round.
        obs: Observability recorder; each processed event emits a span
            and per-kind counters (no-op by default).
    """

    def __init__(
        self,
        topo: Topology,
        duration_s: float,
        pipeline: SensingPipeline,
        repair_accuracy: float = 0.8,
        service_s: float = 2.0 * DAY_S,
        seed: int = 0,
        full_repair_cycles: bool = False,
        technician_pool: Optional[int] = None,
        obs: Recorder = NULL_RECORDER,
    ):
        if not 0.0 <= repair_accuracy <= 1.0:
            raise ValueError("repair accuracy outside [0, 1]")
        self.topo = topo
        self.duration_s = duration_s
        self.repair_accuracy = repair_accuracy
        self.service_s = service_s
        self.full_repair_cycles = full_repair_cycles
        self.rng = random.Random(seed)
        self.obs = obs
        self.metrics = SimulationMetrics()
        self._heap: List[Tuple[float, int, float, int, object]] = []
        self._tiebreak = itertools.count()
        #: Links with an outstanding scheduled repair.  Mirrors heap
        #: residency: dropped (beyond-horizon) repairs stay pending
        #: forever, exactly like never-popped entries in the old loops.
        self._pending_repairs: Set[LinkId] = set()
        self._pool: Optional[TechnicianPoolQueue] = None
        self._next_pool_check: Optional[float] = None
        if technician_pool is not None:
            self._pool = TechnicianPoolQueue(
                num_technicians=technician_pool,
                service_time_s=service_s,
                obs=obs,
            )
        self._started = False
        self._result: Optional[RunResult] = None
        self.pipeline = pipeline
        pipeline.attach(self)

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def schedule(self, kind: int, time_s: float, payload=None) -> None:
        """Push an event; the pipeline may quantize or drop it."""
        when = self.pipeline.event_time(time_s)
        if when is None:
            return
        heapq.heappush(
            self._heap, (when, kind, time_s, next(self._tiebreak), payload)
        )

    def schedule_repair(self, time_s: float, link_id: LinkId) -> None:
        """Send a disabled link to repair under the configured model."""
        if self._pool is not None:
            self._pool.submit(Ticket(link_id=link_id, created_s=time_s), time_s)
            self.schedule_pool_check()
            return
        if self.full_repair_cycles:
            done = time_s + self.service_s
        else:
            # Paper model: failed first repairs fold into a doubled stay.
            attempts = 1 if self.rng.random() < self.repair_accuracy else 2
            done = time_s + attempts * self.service_s
        self._pending_repairs.add(link_id)
        self.schedule(EVENT_REPAIR, done, link_id)

    def repair_pending(self, link_id: LinkId) -> bool:
        return link_id in self._pending_repairs

    def schedule_pool_check(self) -> None:
        """Schedule a wake-up at the pool's next completion time.

        At most one check is outstanding: a new one is pushed only when
        the next completion precedes the currently scheduled wake-up
        (duplicate entries for the same completion would pop as empty
        drains).
        """
        completion = self._pool.next_completion()
        if completion is None:
            return
        if (
            self._next_pool_check is not None
            and completion >= self._next_pool_check
        ):
            return
        self._next_pool_check = completion
        self.schedule(EVENT_POOL_CHECK, completion)

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #

    def snapshot(self, time_s: float) -> None:
        self.metrics.penalty.record(time_s, self.pipeline.current_penalty())
        fractions = self.pipeline.tor_fractions()
        if fractions is not None:
            worst, average = fractions
            self.metrics.worst_tor_fraction.record(time_s, worst)
            self.metrics.average_tor_fraction.record(time_s, average)
            self.pipeline.after_snapshot(time_s, worst)

    # ------------------------------------------------------------------ #
    # The loop
    # ------------------------------------------------------------------ #

    def _handle_pool_check(self, time_s: float) -> None:
        """Drain finished technician visits; failed repairs re-enter the
        queue for another service round (each failed attempt adds another
        full service time, §5.2)."""
        self._next_pool_check = None
        for ticket in self._pool.pop_due(time_s):
            if self.rng.random() < self.repair_accuracy:
                self.pipeline.pool_repair_succeeded(time_s, ticket.link_id)
            else:
                self.metrics.failed_repairs += 1
                self._pool.submit(
                    Ticket(link_id=ticket.link_id, created_s=time_s), time_s
                )
        self.schedule_pool_check()

    def start(self) -> None:
        """Bootstrap the pipeline's initial event population (idempotent).

        Separated from :meth:`run` so a long-running service can bootstrap
        once, then drain the heap in checkpointable slices via
        :meth:`run_until`.
        """
        if self._started:
            return
        self._started = True
        self.pipeline.bootstrap()

    def run_until(self, time_limit_s: float) -> int:
        """Process every event with heap time ``<= time_limit_s``.

        Requires :meth:`start` to have run.  Returns the number of events
        processed.  Passing ``float("inf")`` drains the heap completely;
        repeated calls with increasing limits process exactly the same
        event sequence as one full drain, which is what makes a
        checkpoint boundary a safe kill point.
        """
        pipeline = self.pipeline
        duration_s = self.duration_s
        obs = self.obs
        span_names = pipeline.span_names
        span_cat = pipeline.span_cat
        snapshot_kinds = pipeline.snapshot_kinds
        heap = self._heap
        processed = 0
        while heap and heap[0][0] <= time_limit_s:
            time_s, kind, _subkey, _tie, payload = heapq.heappop(heap)
            obs.set_sim_time(time_s)
            with obs.span(span_names[kind], cat=span_cat):
                if kind == EVENT_ONSET:
                    pipeline.handle_onset(time_s, payload)
                elif kind == EVENT_REPAIR:
                    self._pending_repairs.discard(payload)
                    pipeline.handle_repair(time_s, payload)
                elif kind == EVENT_POOL_CHECK:
                    self._handle_pool_check(time_s)
                else:
                    pipeline.handle_poll(time_s)
                if obs.enabled:
                    obs.count("sim_events_total", kind=KIND_NAMES[kind])
            if kind in snapshot_kinds and time_s <= duration_s:
                self.snapshot(time_s)
            processed += 1
        return processed

    def events_pending(self) -> int:
        """Events still on the heap."""
        return len(self._heap)

    def next_event_time(self) -> Optional[float]:
        """Heap time of the next event, or ``None`` when drained."""
        return self._heap[0][0] if self._heap else None

    def finish(self) -> RunResult:
        """End-of-run accounting; assemble the result (idempotent)."""
        if self._result is None:
            self.pipeline.finish()
            self._result = RunResult(
                strategy_name=self.pipeline.strategy_name,
                duration_s=self.duration_s,
                metrics=self.metrics,
                **self.pipeline.result_sections(),
            )
        return self._result

    def run(self) -> RunResult:
        """Drain the heap to the end; return the recorded metrics."""
        self.start()
        self.run_until(float("inf"))
        return self.finish()


# ---------------------------------------------------------------------- #
# Oracle sensing: ground truth straight to the strategy (§7.1)
# ---------------------------------------------------------------------- #


class OracleSensing(SensingPipeline):
    """Direct-trace sensing: every onset reaches the strategy instantly.

    Answers "how good are the decisions when the inputs are perfect?" —
    the paper's experimental apparatus.
    """

    span_cat = "engine"
    span_names = {
        EVENT_ONSET: "sim.onset",
        EVENT_REPAIR: "sim.repair",
        EVENT_POOL_CHECK: "sim.pool-check",
    }
    snapshot_kinds = frozenset((EVENT_ONSET, EVENT_REPAIR, EVENT_POOL_CHECK))

    def __init__(
        self,
        trace: CorruptionTrace,
        strategy: MitigationStrategy,
        penalty_fn: PenaltyFn = linear_penalty,
        track_capacity: bool = True,
    ):
        self.trace = trace
        self.strategy = strategy
        self.penalty_fn = penalty_fn
        self.track_capacity = track_capacity
        self._counter: Optional[PathCounter] = None
        self._rates: Dict[LinkId, float] = {}

    @property
    def strategy_name(self) -> str:  # type: ignore[override]
        return self.strategy.name

    def attach(self, kernel: SimulationKernel) -> None:
        super().attach(kernel)
        topo = kernel.topo
        if self.track_capacity:
            # Share the strategy's counter when it has one bound to this
            # topology (CorrOpt / fast-checker strategies do), so the run
            # maintains a single incremental DP instead of several.
            shared = getattr(self.strategy, "counter", None)
            if isinstance(shared, PathCounter) and shared.topo is topo:
                self._counter = shared
            else:
                self._counter = PathCounter(topo)
        # Links with an outstanding fault, in onset order.  Doubles as
        # the penalty support set: the total penalty only ranges over
        # these, so a snapshot costs O(#corrupting links), not O(|E|).
        self._rates = {
            lid: topo.link(lid).max_corruption_rate()
            for lid in topo.corrupting_links()
        }

    def bootstrap(self) -> None:
        for event in self.trace.events:
            self.kernel.schedule(EVENT_ONSET, event.time_s, event)

    # -- events --------------------------------------------------------- #

    def handle_onset(self, time_s: float, event) -> None:
        kernel = self.kernel
        topo = kernel.topo
        metrics = kernel.metrics
        for link_id, condition in zip(event.link_ids, event.conditions):
            link = topo.link(link_id)
            if not link.enabled or link_id in self._rates:
                continue  # already mitigated or already corrupting
            metrics.onsets += 1
            self._rates[link_id] = condition.fwd_rate
            topo.set_corruption(link_id, condition.fwd_rate, Direction.UP)
            if condition.rev_rate > 0:
                topo.set_corruption(link_id, condition.rev_rate, Direction.DOWN)
            if self.strategy.on_onset(link_id):
                metrics.disabled_on_onset += 1
                kernel.schedule_repair(time_s, link_id)
            else:
                metrics.kept_active_on_onset += 1

    def handle_repair(self, time_s: float, link_id: LinkId) -> None:
        kernel = self.kernel
        metrics = kernel.metrics
        success = True
        if kernel.full_repair_cycles:
            success = kernel.rng.random() < kernel.repair_accuracy
        if success:
            kernel.topo.clear_corruption(link_id)
            self._rates.pop(link_id, None)
            metrics.repairs_completed += 1
        else:
            metrics.failed_repairs += 1
        kernel.topo.enable_link(link_id)

        if not success:
            # Still corrupting: the monitoring pipeline re-detects it and
            # the strategy re-decides immediately (Figure 12's cycle).
            if self.strategy.on_onset(link_id):
                kernel.schedule_repair(time_s, link_id)
                return

        # A genuine activation frees capacity: let the strategy
        # re-evaluate the corrupting links it previously kept active.
        for newly_disabled in self.strategy.on_activation():
            metrics.disabled_on_activation += 1
            kernel.schedule_repair(time_s, newly_disabled)

    def pool_repair_succeeded(self, time_s: float, link_id: LinkId) -> None:
        kernel = self.kernel
        kernel.topo.clear_corruption(link_id)
        self._rates.pop(link_id, None)
        kernel.metrics.repairs_completed += 1
        kernel.topo.enable_link(link_id)
        for newly_disabled in self.strategy.on_activation():
            kernel.metrics.disabled_on_activation += 1
            kernel.schedule_repair(time_s, newly_disabled)

    # -- snapshots ------------------------------------------------------ #

    def current_penalty(self) -> float:
        """§5.1's ``sum_l (1 - d_l) * I(f_l)`` over outstanding faults.

        The penalty integrates the *effective* corruption rate: for an
        unprotected link that is its raw rate (identical to the original
        binary up/down accounting), while a LinkGuardian-protected link
        contributes the residual post-retransmission loss — usually below
        the 1e-8 lossy floor, i.e. nothing.
        """
        topo = self.kernel.topo
        total = 0.0
        for lid in self._rates:
            link = topo.link(lid)
            if not link.enabled:
                continue
            rate = link.effective_corruption_rate()
            if rate >= 1e-8:
                total += self.penalty_fn(rate)
        return total

    def tor_fractions(self) -> Optional[Tuple[float, float]]:
        if self._counter is None:
            return None
        return (
            self._counter.worst_tor_fraction(),
            self._counter.average_tor_fraction(),
        )

    def after_snapshot(self, time_s: float, worst: float) -> None:
        # LG-aware effective capacity: only recorded when protections can
        # exist, so non-LG runs keep their exact metric footprint.
        counter = self._counter
        if counter is not None and self.kernel.topo.lg_protected_links():
            self.kernel.metrics.effective_capacity.record(
                time_s, counter.effective_average_tor_fraction()
            )

    # -- run end -------------------------------------------------------- #

    def finish(self) -> None:
        self.kernel.metrics.lg_protections = getattr(
            self.strategy, "protections", 0
        )
        obs = self.kernel.obs
        if obs.enabled and self._counter is not None:
            obs.scrape_path_counter(self._counter, role="engine")

    def result_sections(self) -> Dict[str, object]:
        return {"optimizer_stats": self.strategy.optimizer_stats}


# ---------------------------------------------------------------------- #
# Telemetry sensing: the world as SNMP counters see it
# ---------------------------------------------------------------------- #


class TelemetrySensing(SensingPipeline):
    """Poll-driven sensing through the full monitoring path.

    Nothing reaches the controller except through::

        trace onsets → topology ground truth → SNMP counters →
        (fault-injected transport) → sanitizer → store →
        detection → hardened controller → disable / fail-safe keep

    Polls are heap events (``EVENT_POLL``) at ``k * poll_interval_s``.
    Onsets and repair completions quantize *up* to the next poll tick —
    a poll-driven system cannot observe or act between polls — with the
    true event time as the heap subkey so co-quantized events keep their
    causal order, and events beyond the last poll are dropped (the run
    never observes them).  This reproduces the historical tick loop
    bit-for-bit while sharing the kernel's heap, repair scheduler and
    snapshot path.

    Determinism contract: with a fault config whose rates are all zero
    (or no config at all) the run is bit-identical to the fault-free
    run — the chaos apparatus must not perturb the system it observes.
    """

    span_cat = "chaos"
    span_names = {
        EVENT_ONSET: "chaos.onsets",
        EVENT_REPAIR: "chaos.repair",
        EVENT_POLL: "tick",
    }
    snapshot_kinds = frozenset((EVENT_POLL,))
    strategy_name = "corropt"

    def __init__(
        self,
        trace: CorruptionTrace,
        constraint,
        fault_config: Optional[TelemetryFaultConfig] = None,
        detection_threshold: float = 1e-7,
        packets_per_poll: int = 10_000_000,
        poll_interval_s: float = 900.0,
        debounce_confirm: int = 2,
        max_decisions: int = 4096,
        audit_maxlen: int = 1024,
        slo_rules=None,
        health_snapshot_every_s: float = 3600.0,
        congestion_model=None,
        miswiring=None,
        probe_links_per_poll: int = 8,
        miswire_confirm: int = 2,
        classifier: Optional[CauseClassifier] = None,
    ):
        self.trace = trace
        self.constraint = constraint
        self.fault_config = fault_config
        self.detection_threshold = detection_threshold
        self.packets_per_poll = packets_per_poll
        self.poll_interval_s = poll_interval_s
        self.debounce_confirm = debounce_confirm
        self.max_decisions = max_decisions
        self.audit_maxlen = audit_maxlen
        self.slo_rules = slo_rules
        self.health_snapshot_every_s = health_snapshot_every_s
        #: Optional congestion co-model: feeds diurnal utilization through
        #: the poller's traffic callable and queue losses through the
        #: drops channel only (no FCS signature, §3).
        self._congestion_model = congestion_model
        #: Optional A3-style miswiring fault: swaps the poller's FCS
        #: attribution and activates the rotating probe cross-check.
        self._miswiring = miswiring
        self.probe_links_per_poll = probe_links_per_poll
        self.miswire_confirm = miswire_confirm
        self.classifier = classifier or CauseClassifier(
            corruption_threshold=detection_threshold,
            congestion_threshold=detection_threshold,
        )

    def _offered_packets(self, _did, _t) -> int:
        """Offered packets per direction per poll (a bound method rather
        than a lambda so the whole pipeline stays picklable for
        checkpoint/restore)."""
        return self.packets_per_poll

    # -- congestion co-model adapters ----------------------------------- #
    #
    # Bound methods (not the model's closure factories) so the pipeline
    # stays picklable, with a one-slot memo so the packets and loss
    # callables of one (direction, tick) see the *same* utilization draw
    # (TrafficProfile.utilization advances AR(1) state per call).

    def _congestion_utilization(self, did, now) -> float:
        memo = self._util_memo
        if memo is not None and memo[0] == did and memo[1] == now:
            return memo[2]
        util = self._congestion_model.utilization(did, now)
        self._util_memo = (did, now, util)
        return util

    def _congestion_packets(self, did, now) -> int:
        util = self._congestion_utilization(did, now)
        link = self.kernel.topo.find_link(*did)
        line_pkts = (
            link.capacity_gbps * 1e9 / 8.0 / 1000.0 * self.poll_interval_s
        )
        return int(line_pkts * util)

    def _congestion_loss(self, did, now) -> float:
        return self._congestion_model.loss_rate(
            did, self._congestion_utilization(did, now)
        )

    def attach(self, kernel: SimulationKernel) -> None:
        super().attach(kernel)
        topo = kernel.topo
        obs = kernel.obs
        interval = self.poll_interval_s
        # Tick times accumulate exactly like the poller's internal clock
        # (`time_s += interval`), so scheduled polls compare equal to
        # poll_once() timestamps even for non-representable intervals.
        self._ticks: List[float] = []
        tick = 0.0
        for _ in range(int(kernel.duration_s / interval)):
            tick += interval
            self._ticks.append(tick)

        self.store = TelemetryStore()
        self.sanitizer = TelemetrySanitizer(interval_s=interval, obs=obs)
        self.transport = (
            FaultyTransport(self.fault_config)
            if self.fault_config is not None
            else None
        )
        self.poller = self._make_poller(topo, obs, interval)
        self.audit = AuditLog(maxlen=self.audit_maxlen)
        self.controller = self._make_controller(topo, obs, interval)

        self.chaos = ChaosMetrics()
        # Ground truth bookkeeping: outstanding fault onset times and
        # which of them the telemetry pipeline has noticed.
        self._onset_time: Dict[LinkId, float] = {}
        self._detected: Set[LinkId] = set()
        # Diagnosis layer state.  The accuracy ledger only exists when a
        # diagnosis-bearing scenario family (congestion co-model,
        # miswiring, flow voting) is active, so plain telemetry runs keep
        # their exact result surface.
        self._util_memo = None
        self.diagnosis: Optional[DiagnosisStats] = (
            DiagnosisStats() if self._diagnosis_active() else None
        )
        self._diagnosis_noted: Set[Tuple[str, object]] = set()
        # Rotating active-probe cross-check (A3): only runs when a
        # miswiring fault is installed.
        self._probe_ring: List[LinkId] = (
            sorted(link.link_id for link in topo.links())
            if self._miswiring is not None
            else []
        )
        self._probe_cursor = 0
        self._probe_mismatch: Dict[LinkId, int] = {}
        self._miswire_flagged: Set[LinkId] = set()
        self._min_threshold = min(
            [self.constraint.default] + list(self.constraint.per_tor.values())
        )
        # Event-time health indicators + SLO evaluation.  The tracker
        # consumes no RNG and schedules nothing, so runs stay bit-identical
        # to untracked ones; it pickles with the pipeline, so scorecards
        # survive checkpoint/resume byte-for-byte.
        self.health = HealthTracker(
            poll_interval_s=interval,
            capacity_floor=self._min_threshold,
            duration_s=kernel.duration_s,
            num_shards=self._num_shards(),
            rules=self.slo_rules,
        )
        self.health.router = self._health_router()
        if self.diagnosis is not None:
            self.health.attach_diagnosis(self.diagnosis)
        self._next_health_pub_s = self.health_snapshot_every_s

    def _diagnosis_active(self) -> bool:
        """Whether this run carries a diagnosis accuracy ledger."""
        return (
            self._congestion_model is not None or self._miswiring is not None
        )

    # -- health wiring (overridden by the service pipeline) ------------- #

    def _num_shards(self) -> int:
        return 1

    def _health_router(self):
        """ShardRouter-like object for the tracker (``None`` → shard 0)."""
        return None

    def _health_components(self) -> List[Tuple[int, int, int]]:
        """Per-shard ``(index, breaker_open, debounce_confirmed)`` triples."""
        controller = self.controller
        return [(
            0,
            1 if controller.optimizer_breaker.state is BreakerState.OPEN else 0,
            controller.debouncer.confirmed_count(),
        )]

    # -- component factories (overridden by the service pipeline) ------- #

    def _make_poller(self, topo, obs, interval: float) -> SnmpPoller:
        return SnmpPoller(
            topo,
            self.store,
            packets_fn=(
                self._offered_packets
                if self._congestion_model is None
                else self._congestion_packets
            ),
            congestion_fn=(
                None if self._congestion_model is None
                else self._congestion_loss
            ),
            interval_s=interval,
            transport=self.transport,
            sanitizer=self.sanitizer,
            attribution_fn=(
                None if self._miswiring is None else self._miswiring.physical
            ),
            obs=obs,
        )

    def _make_controller(self, topo, obs, interval: float) -> CorrOptController:
        return CorrOptController(
            topo,
            self.constraint,
            quarantine_fn=self.sanitizer.link_quarantined,
            debouncer=OnsetDebouncer(
                confirm=self.debounce_confirm,
                window_s=3 * interval,
                high=self.detection_threshold,
            ),
            optimizer_breaker=CircuitBreaker(),
            max_decisions=self.max_decisions,
            audit=self.audit,
            obs=obs,
        )

    def bootstrap(self) -> None:
        kernel = self.kernel
        for event in sorted(self.trace.events, key=lambda e: e.time_s):
            kernel.schedule(EVENT_ONSET, event.time_s, event)
        for tick in self._ticks:
            kernel.schedule(EVENT_POLL, tick)

    def event_time(self, time_s: float) -> Optional[float]:
        """Quantize to the next poll tick; drop beyond the last poll."""
        idx = bisect_left(self._ticks, time_s)
        if idx == len(self._ticks):
            return None
        return self._ticks[idx]

    # -- events --------------------------------------------------------- #

    def handle_onset(self, time_s: float, event) -> None:
        """Write ground-truth corruption for one trace event."""
        topo = self.kernel.topo
        metrics = self.kernel.metrics
        for link_id, condition in zip(event.link_ids, event.conditions):
            link = topo.link(link_id)
            if not link.enabled or link_id in self._onset_time:
                continue  # already mitigated or already corrupting
            metrics.onsets += 1
            self._onset_time[link_id] = event.time_s
            topo.set_corruption(link_id, condition.fwd_rate, Direction.UP)
            if condition.rev_rate > 0:
                topo.set_corruption(link_id, condition.rev_rate, Direction.DOWN)
            self.health.note_onset(event.time_s, link_id, condition.fwd_rate)

    def _controller_for(self, link_id: LinkId) -> CorrOptController:
        """The controller that owns ``link_id`` (sharded in the service)."""
        return self.controller

    def handle_repair(self, time_s: float, link_id: LinkId) -> None:
        kernel = self.kernel
        self._onset_time.pop(link_id, None)
        self._detected.discard(link_id)
        if self.diagnosis is not None:
            # A repaired link starts a fresh diagnosis episode.
            link = kernel.topo.link(link_id)
            for direction in (Direction.UP, Direction.DOWN):
                self._diagnosis_noted.discard(
                    ("ctr", link.direction_id(direction))
                )
            self._diagnosis_noted.discard(("probe", link_id))
            self._diagnosis_noted.discard(("vote", link_id))
        self.health.note_repair(time_s, link_id)
        kernel.metrics.repairs_completed += 1
        controller = self._controller_for(link_id)
        before = controller.log.disabled_by_optimizer
        result = controller.activate_link(
            link_id, repaired=True, time_s=time_s
        )
        newly = controller.log.disabled_by_optimizer - before
        kernel.metrics.disabled_on_activation += newly
        # Optimizer-driven disables also need repair visits (skip any the
        # fail-safe rule kept active despite the plan).
        for lid in sorted(result.to_disable):
            if not kernel.topo.link(lid).enabled and not kernel.repair_pending(
                lid
            ):
                kernel.schedule_repair(time_s, lid)

    def handle_poll(self, time_s: float) -> None:
        # poll_once() emits its own poll > collect/sanitize/store span
        # subtree, nested under this tick span.
        polled = self.poller.poll_once()
        assert polled == time_s
        self.chaos.polls += 1
        if self._miswiring is not None:
            self._run_probes(time_s)
        with self.kernel.obs.span("chaos.detect", cat="chaos"):
            self._detect_and_report(time_s)

    def _detect_and_report(self, now: float) -> None:
        """Diagnose fresh telemetry samples; mitigate actionable causes.

        The sensing → controller boundary: every fresh sample with a loss
        signature becomes a :class:`~repro.core.diagnosis.LinkDiagnosis`,
        and only actionable causes (corruption / both / unknown) are
        reported to the controller.  Congestion-only verdicts are logged
        in the accuracy ledger but never disabled or ticketed; miswired
        verdicts defer to the probe cross-check
        (:meth:`_run_probes`), which mitigates the *physical* culprit.
        With no congestion co-model and no miswiring this reduces exactly
        to the historical bare-loss-rate path, byte for byte.
        """
        kernel = self.kernel
        topo = kernel.topo
        for link in list(topo.links()):
            if not link.enabled:
                continue
            link_id = link.link_id
            for direction in (Direction.UP, Direction.DOWN):
                did = link.direction_id(direction)
                sample = self.store.last_sample(did)
                if sample is None:
                    continue
                time_s, corruption, congestion, _util, _quality = sample
                if time_s != now:
                    continue  # no fresh sample this tick
                if corruption < self.detection_threshold:
                    # Drops-only signature: diagnose (cause=congestion)
                    # for the accuracy ledger, but never raise a report —
                    # disabling a congested link only shifts its load.
                    if (
                        self.diagnosis is not None
                        and congestion >= self.classifier.congestion_threshold
                    ):
                        diagnosis = self._diagnose(
                            link, direction, did, sample, now
                        )
                        self._note_diagnosis(link_id, did, diagnosis)
                    continue
                diagnosis = self._diagnose(link, direction, did, sample, now)
                if self.diagnosis is not None:
                    self._note_diagnosis(link_id, did, diagnosis)
                if not diagnosis.actionable():
                    continue
                if self._report_and_account(
                    now, link_id, direction, corruption
                ):
                    break  # link is down; no point checking the other side

    def _diagnose(
        self, link, direction: Direction, did, sample, now: float
    ) -> LinkDiagnosis:
        """Classify one fresh sample into a structured diagnosis."""
        _time_s, corruption, congestion, util, _quality = sample
        util_history = cong_history = None
        if (
            self._congestion_model is not None
            and congestion >= self.classifier.congestion_threshold
        ):
            window = self.classifier.correlation_window
            util_history = (
                self.store.utilization_series(did).values[-window:].tolist()
            )
            cong_history = (
                self.store.congestion_series(did).values[-window:].tolist()
            )
        return self.classifier.classify(
            link.link_id,
            direction,
            corruption,
            congestion_rate=congestion,
            utilization=util,
            time_s=now,
            utilization_history=util_history,
            congestion_history=cong_history,
            miswire_suspected=link.link_id in self._miswire_flagged,
        )

    def _true_cause(self, link_id: LinkId, did=None) -> str:
        """Ground-truth cause label for the accuracy ledger."""
        if self._miswiring is not None and self._miswiring.affects(link_id):
            return CAUSE_MISWIRED
        link = self.kernel.topo.link(link_id)
        corrupting = link.max_corruption_rate() > 0
        congested = self._truly_congested(link_id, did)
        if corrupting and congested:
            return CAUSE_BOTH
        if corrupting:
            return CAUSE_CORRUPTION
        if congested:
            return CAUSE_CONGESTION
        return CAUSE_UNKNOWN

    def _truly_congested(self, link_id: LinkId, did=None) -> bool:
        if self._congestion_model is None:
            return False
        if did is not None:
            return self._congestion_model.is_hot(did)
        link = self.kernel.topo.link(link_id)
        return any(
            self._congestion_model.is_hot(link.direction_id(d))
            for d in (Direction.UP, Direction.DOWN)
        )

    def _note_diagnosis(
        self, link_id: LinkId, did, diagnosis: LinkDiagnosis
    ) -> None:
        """Ledger one verdict per (direction, episode); episodes reset on
        repair so re-onsets are scored again."""
        key = ("ctr", did)
        if key in self._diagnosis_noted:
            return
        self._diagnosis_noted.add(key)
        self.diagnosis.note(self._true_cause(link_id, did), diagnosis.cause)

    def _report_and_account(
        self, now: float, link_id: LinkId, direction: Direction, rate: float
    ) -> bool:
        """Report an actionable diagnosis to the owning controller and do
        the detection/mitigation accounting.  Returns True when the link
        was disabled (callers stop scanning its other direction)."""
        kernel = self.kernel
        topo = kernel.topo
        was_quarantined = self.sanitizer.link_quarantined(link_id)
        truly_corrupting = topo.link(link_id).max_corruption_rate() > 0
        decision = self._controller_for(link_id).report_corruption(
            link_id, rate, direction, time_s=now
        )
        if truly_corrupting and link_id not in self._detected:
            self._detected.add(link_id)
            self.chaos.detections += 1
            onset = self._onset_time.get(link_id, now)
            self.chaos.detection_delay_polls += max(
                0.0, (now - onset) / self.poll_interval_s
            )
            self.health.note_detection(now, link_id)
        if decision.disabled:
            kernel.metrics.disabled_on_onset += 1
            if was_quarantined:
                self.chaos.quarantine_violations += 1
            if not truly_corrupting:
                self.chaos.false_disables += 1
                if self.diagnosis is not None and self._truly_congested(
                    link_id
                ):
                    self.diagnosis.congestion_mitigations += 1
            self.health.note_mitigation(
                now,
                link_id,
                truly_corrupting,
                topo.link(link_id).max_corruption_rate(),
            )
            kernel.schedule_repair(now, link_id)
            return True
        elif decision.fast_check is not None:
            kernel.metrics.kept_active_on_onset += 1
            self.health.note_kept(now, link_id)
        return False

    def _run_probes(self, now: float) -> None:
        """A3 cross-check: probe a rotating window of links each poll.

        An active probe traverses the *actual* cable (the data plane does
        not consult the inventory), so probe loss describes the link the
        operator asked about while its counters may describe another.  A
        link whose probe verdict and counter verdict disagree for
        ``miswire_confirm`` consecutive probes is flagged miswired:
        counter-driven mitigation is refused for it (the counters are
        someone else's), and probe-sourced reports carry the corruption
        the counters deny, so the physical culprit is still mitigated.
        """
        topo = self.kernel.topo
        ring = self._probe_ring
        if not ring:
            return
        window = min(self.probe_links_per_poll, len(ring))
        start = self._probe_cursor
        self._probe_cursor = (start + window) % len(ring)
        for i in range(window):
            link_id = ring[(start + i) % len(ring)]
            link = topo.link(link_id)
            if not link.enabled:
                continue
            probe_rate = link.max_corruption_rate()
            probe_detect = probe_rate >= self.detection_threshold
            counter_rate = 0.0
            fresh = False
            for direction in (Direction.UP, Direction.DOWN):
                sample = self.store.last_sample(link.direction_id(direction))
                if sample is not None and sample[0] == now:
                    fresh = True
                    counter_rate = max(counter_rate, sample[1])
            flagged = link_id in self._miswire_flagged
            if fresh:
                counter_detect = counter_rate >= self.detection_threshold
                if counter_detect != probe_detect:
                    count = self._probe_mismatch.get(link_id, 0) + 1
                    self._probe_mismatch[link_id] = count
                    if count >= self.miswire_confirm and not flagged:
                        self._miswire_flagged.add(link_id)
                        flagged = True
                        self.chaos.miswires_flagged += 1
                        if self.diagnosis is not None:
                            key = ("probe", link_id)
                            if key not in self._diagnosis_noted:
                                self._diagnosis_noted.add(key)
                                self.diagnosis.note(
                                    self._true_cause(link_id), CAUSE_MISWIRED
                                )
                else:
                    self._probe_mismatch.pop(link_id, None)
            # Probe-sourced mitigation: the probe sees corruption the
            # counters deny (its FCS signature was swapped away), so the
            # report carries the probe-measured rate.
            if flagged and probe_detect and link_id not in self._detected:
                up_rate = link.corruption_rate[Direction.UP]
                down_rate = link.corruption_rate[Direction.DOWN]
                direction = (
                    Direction.UP if up_rate >= down_rate else Direction.DOWN
                )
                self._report_and_account(now, link_id, direction, probe_rate)

    # -- snapshots ------------------------------------------------------ #

    def current_penalty(self) -> float:
        return self.controller.current_penalty()

    def tor_fractions(self) -> Tuple[float, float]:
        return (
            self.controller.worst_tor_fraction(),
            self.controller.average_tor_fraction(),
        )

    def after_snapshot(self, time_s: float, worst: float) -> None:
        if worst < self._min_threshold - 1e-9:
            self.chaos.capacity_violations += 1
        quarantined = self.sanitizer.quarantined_directions()
        self.chaos.quarantined_peak = max(
            self.chaos.quarantined_peak, quarantined
        )
        obs = self.kernel.obs
        self.health.note_poll(
            time_s,
            worst,
            quarantined,
            self._health_components(),
            penalty=self.current_penalty(),
            obs=obs,
        )
        if obs.enabled and time_s + 1e-9 >= self._next_health_pub_s:
            while self._next_health_pub_s <= time_s + 1e-9:
                self._next_health_pub_s += self.health_snapshot_every_s
            self._publish_health(time_s)

    def _publish_health(self, time_s: float) -> None:
        """Periodic event-time health snapshot into the obs stream."""
        obs = self.kernel.obs
        row = self.health.report(end_s=time_s, complete=False).row()
        for key, value in row.items():
            if isinstance(value, bool):
                obs.gauge(f"health_{key}", 1.0 if value else 0.0)
            elif isinstance(value, (int, float)):
                obs.gauge(f"health_{key}", float(value))
        obs.event(
            "health_snapshot",
            detections=row["detections"],
            false_disables=row["false_disables"],
            alerts_fired=row["alerts_fired"],
            slo_ok=row["slo_ok"],
        )

    # -- run end -------------------------------------------------------- #

    def finish(self) -> None:
        # Faults outstanding at the end that telemetry never surfaced.
        self.chaos.missed_mitigations = sum(
            1 for lid in self._onset_time if lid not in self._detected
        )
        if self.diagnosis is not None:
            self.diagnosis.missed_corrupting = self.chaos.missed_mitigations
        self.chaos.missed_polls = self.poller.missed_polls
        self.chaos.degraded_samples = (
            self.sanitizer.stats.missing
            + self.sanitizer.stats.resets_detected
            + self.sanitizer.stats.freezes_detected
            + self.sanitizer.stats.duplicates_dropped
            + self.sanitizer.stats.out_of_order_dropped
        )
        self.chaos.decisions_in_degraded_mode = (
            self.controller.log.fail_safe_keeps
            + self.controller.log.optimizer_fallbacks
        )
        if self.kernel.obs.enabled:
            self._scrape_final()

    def _scrape_final(self) -> None:
        """Export end-of-run stats from components that keep their own
        counters (path counter, optimizer, sanitizer) into the registry."""
        obs = self.kernel.obs
        obs.scrape_path_counter(self.controller.counter, role="controller")
        obs.scrape_optimizer_stats(
            self.controller.log.optimizer_stats, role="controller"
        )
        self.sanitizer.flush_obs_counts()
        for key, value in vars(self.sanitizer.stats).items():
            obs.gauge(f"sanitizer_stats_{key}", value)
        obs.gauge(
            "sanitizer_quarantined_directions",
            self.sanitizer.quarantined_directions(),
        )
        obs.gauge("audit_evicted_records", self.audit.evicted)
        self._publish_health(self.kernel.duration_s)

    def result_sections(self) -> Dict[str, object]:
        sections: Dict[str, object] = {
            "chaos": self.chaos,
            "audit": self.audit,
            "sanitizer_stats": self.sanitizer.stats,
            "controller_log": self.controller.log,
            "health": self.health.report(),
        }
        if self.diagnosis is not None:
            sections["diagnosis"] = self.diagnosis
        return sections
