"""Scenario presets for the §7 evaluations.

Bundles (topology factory, trace, constraint) the way the paper's
simulations do: medium/large DCN topologies with Oct–Dec-style corruption
traces.  A ``scale`` knob shrinks topologies shape-preservingly so tests
and CI runs stay fast; benchmarks can run closer to paper size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.core.constraints import CapacityConstraint
from repro.core.penalty import penalty_by_name
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.simulation.engine import MitigationSimulation, SimulationResult
from repro.simulation.strategies import (
    STRATEGY_NAMES,
    MitigationStrategy,
    build_strategy,
)
from repro.topology.graph import Topology
from repro.workloads.dcn_profiles import DCNProfile, LARGE_DCN, MEDIUM_DCN
from repro.workloads.generator import deduplicate_active, generate_trace
from repro.workloads.trace import CorruptionTrace


@dataclass
class Scenario:
    """A reproducible evaluation setting.

    Attributes:
        name: Scenario label.
        profile: DCN shape.
        scale: Topology scale factor.
        trace: Corruption trace generated for the scaled topology.
        capacity: Default per-ToR constraint (the paper's realistic regime
            is 75%).
    """

    name: str
    profile: DCNProfile
    scale: float
    trace: CorruptionTrace
    capacity: float = 0.75

    _base_topo: Topology = None  # type: ignore[assignment]

    def topo_factory(self) -> Topology:
        """A fresh, pristine copy of the scenario topology."""
        return self._base_topo.copy()

    def constraint(self) -> CapacityConstraint:
        return CapacityConstraint(self.capacity)


def fattree_arity(profile: DCNProfile, scale: float = 1.0) -> int:
    """The fat-tree ``k`` standing in for a Clos profile at ``scale``.

    Chosen so the fat-tree's pod count tracks the scaled profile's —
    the same knob :meth:`DCNProfile.build` scales — clamped to the
    smallest legal even arity.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    k = max(4, int(round(profile.num_pods * scale)))
    return k + (k % 2)


def make_scenario(
    profile: DCNProfile = MEDIUM_DCN,
    scale: float = 0.25,
    duration_days: float = 30.0,
    seed: int = 0,
    capacity: float = 0.75,
    events_per_10k_links_per_day: float = 4.0,
    dedup: bool = True,
    topo_kind: str = "clos",
    breakout_fraction: float = 0.0,
) -> Scenario:
    """Build a scenario: scaled topology + corruption trace.

    By default traces are deduplicated so each link has at most one
    outstanding fault, matching the simulator's link-lifecycle model;
    ``dedup=False`` keeps the raw generator output (the technician-pool
    ablation stresses overlapping tickets).  This is the single build
    path shared by in-process campaigns and pool workers
    (:mod:`repro.parallel.worker`).

    ``topo_kind="fattree"`` swaps the plane-wired Clos for a k-ary
    fat-tree sized via :func:`fattree_arity`; ``breakout_fraction`` > 0
    groups that fraction of links into breakout cables (deterministic
    assignment) so fleet campaigns model §4's root cause 5.
    """
    if topo_kind == "clos":
        topo = profile.build(scale=scale)
    elif topo_kind == "fattree":
        from repro.topology.fattree import build_fattree

        topo = build_fattree(fattree_arity(profile, scale), name=profile.name)
    else:
        raise ValueError(f"unknown topo_kind {topo_kind!r}")
    if breakout_fraction > 0.0:
        from repro.topology.breakout import assign_breakout_groups

        # Two links per cable: the study DCNs' per-switch fanouts are
        # modest enough that 4-wide cables would never form at their
        # default fractions.
        assign_breakout_groups(
            topo, fraction=breakout_fraction, links_per_cable=2
        )
    trace = generate_trace(
        topo,
        duration_days=duration_days,
        seed=seed,
        events_per_10k_links_per_day=events_per_10k_links_per_day,
    )
    if dedup:
        trace = deduplicate_active(trace)
    scenario = Scenario(
        name=f"{profile.name}-x{scale}",
        profile=profile,
        scale=scale,
        trace=trace,
        capacity=capacity,
    )
    scenario._base_topo = topo
    return scenario


def medium_scenario(**kwargs) -> Scenario:
    """§7.1's medium DCN (O(15K) links at scale 1.0)."""
    return make_scenario(profile=MEDIUM_DCN, **kwargs)


def large_scenario(**kwargs) -> Scenario:
    """§7.1's large DCN (O(35K) links at scale 1.0)."""
    return make_scenario(profile=LARGE_DCN, **kwargs)


def chaos_scenario(**kwargs) -> Scenario:
    """Medium-DCN preset sized for closed-loop chaos runs.

    The chaos simulation (:mod:`repro.simulation.chaos`) keeps the whole
    telemetry pipeline in the loop — every link direction is polled every
    15 minutes — so a simulated day costs far more than in the
    event-driven engine.  This preset shrinks the horizon and raises the
    event rate so telemetry faults and mitigation decisions interact
    within a short run; everything is overridable.
    """
    defaults = dict(
        profile=MEDIUM_DCN,
        scale=0.12,
        duration_days=4.0,
        events_per_10k_links_per_day=400.0,
    )
    defaults.update(kwargs)
    return make_scenario(**defaults)


@dataclass(frozen=True)
class StrategyFactory:
    """A picklable strategy constructor: ``factory(topo) → strategy``.

    Replaces the closure-based factories so comparison campaigns can ship
    factories to pool workers (``run_comparison(jobs=N)``); with a no-op
    recorder every field pickles.  Live recorders still work for serial
    runs but make the factory unpicklable — the runner rejects that
    combination explicitly.
    """

    name: str
    capacity: float
    obs: Recorder = field(default=NULL_RECORDER, compare=False)
    #: Penalty-function name fed to the strategies that run the global
    #: optimizer.  Previously ``build_strategy``'s default was always
    #: used; the name (not the callable) is stored to stay picklable.
    penalty: str = "linear"
    #: Per-strategy knobs as a sorted (name, value) tuple — hashable and
    #: picklable, unlike a dict on a frozen dataclass.
    knobs: Tuple[Tuple[str, float], ...] = ()

    def __call__(self, topo: Topology) -> MitigationStrategy:
        return build_strategy(
            self.name,
            topo,
            CapacityConstraint(self.capacity),
            penalty_fn=penalty_by_name(self.penalty),
            obs=self.obs,
            knobs=dict(self.knobs) or None,
        )


def standard_strategies(
    capacity: float,
    obs: Recorder = NULL_RECORDER,
) -> Dict[str, StrategyFactory]:
    """The paper's strategy lineup, as factories over a fresh topology."""
    return {
        name: StrategyFactory(name, capacity, obs=obs)
        for name in ("corropt", "fast-checker-only", "switch-local", "none")
    }


def run_scenario(
    scenario: Scenario,
    strategy_name: str = "corropt",
    repair_accuracy: float = 0.8,
    seed: int = 0,
    track_capacity: bool = True,
    obs: Recorder = NULL_RECORDER,
    lg_coverage: float = 0.0,
    penalty: str = "linear",
    knobs: Tuple[Tuple[str, float], ...] = (),
) -> SimulationResult:
    """Run one strategy over a scenario on a fresh topology copy.

    Any name from :data:`~repro.simulation.strategies.STRATEGY_NAMES` is
    accepted.  ``lg_coverage`` flags that fraction of links LG-capable on
    the run's private topology copy (the scenario's base stays pristine).
    """
    if strategy_name not in STRATEGY_NAMES:
        raise ValueError(
            f"unknown strategy {strategy_name!r}; "
            f"choose from {list(STRATEGY_NAMES)}"
        )
    factory = StrategyFactory(
        strategy_name,
        scenario.capacity,
        obs=obs,
        penalty=penalty,
        knobs=tuple(sorted(knobs)),
    )
    topo = scenario.topo_factory()
    if lg_coverage:
        topo.assign_lg_capable(lg_coverage)
    strategy = factory(topo)
    sim = MitigationSimulation(
        topo,
        scenario.trace,
        strategy,
        repair_accuracy=repair_accuracy,
        seed=seed,
        track_capacity=track_capacity,
        obs=obs,
    )
    return sim.run()
