"""Event-driven mitigation simulation (§7.1's evaluation apparatus).

- :class:`~repro.simulation.engine.MitigationSimulation` — replay a
  corruption trace under a strategy + repair model;
- strategies: CorrOpt, fast-checker-only, switch-local, none, drain;
- :class:`~repro.simulation.metrics.StepSeries` — exact piecewise-constant
  penalty/capacity series;
- scenario presets for the medium/large DCNs.
"""

from repro.simulation.engine import (
    MitigationSimulation,
    SimulationResult,
    run_comparison,
)
from repro.simulation.metrics import SimulationMetrics, StepSeries
from repro.simulation.scenarios import (
    Scenario,
    large_scenario,
    make_scenario,
    medium_scenario,
    run_scenario,
    standard_strategies,
)
from repro.simulation.strategies import (
    CorrOptStrategy,
    DrainStrategy,
    FastCheckerOnlyStrategy,
    MitigationStrategy,
    NoMitigationStrategy,
    SwitchLocalStrategy,
)

__all__ = [
    "CorrOptStrategy",
    "DrainStrategy",
    "FastCheckerOnlyStrategy",
    "MitigationSimulation",
    "MitigationStrategy",
    "NoMitigationStrategy",
    "Scenario",
    "SimulationMetrics",
    "SimulationResult",
    "StepSeries",
    "SwitchLocalStrategy",
    "large_scenario",
    "make_scenario",
    "medium_scenario",
    "run_comparison",
    "run_scenario",
    "standard_strategies",
]
