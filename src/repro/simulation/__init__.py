"""Event-driven mitigation simulation (§7.1's evaluation apparatus).

- :class:`~repro.simulation.engine.MitigationSimulation` — replay a
  corruption trace under a strategy + repair model;
- strategies: CorrOpt, fast-checker-only, switch-local, none, drain;
- :class:`~repro.simulation.metrics.StepSeries` — exact piecewise-constant
  penalty/capacity series;
- scenario presets for the medium/large DCNs.
"""

from repro.simulation.chaos import (
    CHAOS_PRESETS,
    ChaosResult,
    ChaosSimulation,
    chaos_preset,
    run_chaos_scenario,
)
from repro.simulation.engine import (
    MitigationSimulation,
    SimulationResult,
    run_comparison,
)
from repro.simulation.kernel import (
    EVENT_ONSET,
    EVENT_POLL,
    EVENT_POOL_CHECK,
    EVENT_REPAIR,
    OracleSensing,
    SensingPipeline,
    SimulationKernel,
    TelemetrySensing,
)
from repro.simulation.metrics import ChaosMetrics, SimulationMetrics, StepSeries
from repro.simulation.results import RunResult
from repro.simulation.scenarios import (
    Scenario,
    chaos_scenario,
    large_scenario,
    make_scenario,
    medium_scenario,
    run_scenario,
    standard_strategies,
)
from repro.simulation.strategies import (
    CorrOptStrategy,
    DrainStrategy,
    FastCheckerOnlyStrategy,
    MitigationStrategy,
    NoMitigationStrategy,
    SwitchLocalStrategy,
)

__all__ = [
    "CHAOS_PRESETS",
    "EVENT_ONSET",
    "EVENT_POLL",
    "EVENT_POOL_CHECK",
    "EVENT_REPAIR",
    "ChaosMetrics",
    "ChaosResult",
    "ChaosSimulation",
    "CorrOptStrategy",
    "DrainStrategy",
    "FastCheckerOnlyStrategy",
    "MitigationSimulation",
    "MitigationStrategy",
    "NoMitigationStrategy",
    "OracleSensing",
    "RunResult",
    "Scenario",
    "SensingPipeline",
    "SimulationKernel",
    "SimulationMetrics",
    "SimulationResult",
    "StepSeries",
    "SwitchLocalStrategy",
    "TelemetrySensing",
    "chaos_preset",
    "chaos_scenario",
    "large_scenario",
    "make_scenario",
    "medium_scenario",
    "run_chaos_scenario",
    "run_comparison",
    "run_scenario",
    "standard_strategies",
]
