"""Closed-loop chaos simulation: CorrOpt with telemetry in the loop.

The oracle-sensing engine (:mod:`repro.simulation.engine`) hands
ground-truth corruption onsets straight to the strategy — it answers "how
good are the decisions when the inputs are perfect?".  This module answers
the harder question from the ISSUE: **how does CorrOpt behave when its
inputs lie?**

Here nothing reaches the controller except through the monitoring path:

    trace onsets → topology ground truth → SNMP counters →
    (fault-injected transport) → sanitizer → store →
    detection → hardened controller → disable / fail-safe keep

Poll-driven, 15-minute granularity.  Telemetry faults (missed polls,
wraps, resets, freezes, duplicates, delays) are injected by a
:class:`~repro.faults.telemetry_faults.FaultyTransport`; the sanitizer
rates every sample and quarantines flaky directions; the hardened
controller refuses to disable on quarantined data.

Determinism contract: with a fault config whose rates are all zero (or no
config at all) the run is bit-identical to the fault-free run — the chaos
apparatus itself must not perturb the system it observes.

Since the kernel unification, :class:`ChaosSimulation` is a thin shim
composing :class:`~repro.simulation.kernel.SimulationKernel` with
:class:`~repro.simulation.kernel.TelemetrySensing`; polls are scheduled
heap events on the shared kernel rather than a private tick loop.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.congestion.presets import congestion_model
from repro.faults.miswiring import MiswiringFault
from repro.faults.telemetry_faults import TelemetryFaultConfig
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.registry import require
from repro.simulation.kernel import DAY_S, SimulationKernel, TelemetrySensing
from repro.simulation.results import ChaosResult, RunResult
from repro.simulation.scenarios import Scenario
from repro.simulation.voting import FlowVotingSensing

#: Deterministic offsets separating the congestion / miswiring RNG
#: streams from the repair stream derived from the same run seed.
_CONGESTION_SEED_OFFSET = 7919
_MISWIRE_SEED_OFFSET = 104729

__all__ = [
    "CHAOS_PRESETS",
    "ChaosResult",
    "ChaosSimulation",
    "chaos_preset",
    "run_chaos_scenario",
]


class ChaosSimulation:
    """Replay a scenario's trace with the telemetry pipeline in the loop.

    Args:
        scenario: Topology + trace + capacity preset.
        fault_config: Telemetry fault rates (``None`` = clean monitoring).
        detection_threshold: Sanitized corruption rate at which a report
            is raised to the controller.
        packets_per_poll: Offered packets per direction per poll; sets the
            smallest observable corruption rate (1 / packets_per_poll).
        repair_accuracy: First-attempt repair success probability (failed
            first attempts fold into a doubled stay, as in the engine).
        service_days: Ticket service time per attempt.
        seed: Seed for the repair RNG (independent of the telemetry fault
            RNG so fault injection never perturbs repair outcomes).
        poll_interval_s: Monitoring granularity.
        debounce_confirm: Consecutive confirming reports needed before the
            controller acts on an onset (1 = act immediately).
        max_decisions: Controller decision ring-buffer bound.
        audit_maxlen: Audit-log ring bound (evictions are counted
            exactly and exported as ``audit_evicted_records``).
        congestion_preset: Named congestion co-model
            (:data:`repro.congestion.presets.CONGESTION_PRESETS`);
            ``None`` / ``"none"`` keeps runs byte-identical to the
            pre-diagnosis pipeline.  The model is seeded from the run
            seed plus a fixed offset, so congestion never perturbs the
            repair RNG stream.
        miswire_pairs: Disjoint link pairs whose telemetry attribution
            is swapped (A3-style wrong inventory map); 0 disables the
            fault and the probe cross-check with it.
        sensing: ``"telemetry"`` (counter-driven detection) or
            ``"voting"`` (the 007-style flow-voting localizer,
            :class:`~repro.simulation.voting.FlowVotingSensing`).
        obs: Observability recorder threaded through the whole closed loop
            (poller, sanitizer, controller, optimizer).  The default
            :data:`~repro.obs.recorder.NULL_RECORDER` preserves the
            determinism contract above bit-for-bit.
    """

    def __init__(
        self,
        scenario: Scenario,
        fault_config: Optional[TelemetryFaultConfig] = None,
        detection_threshold: float = 1e-7,
        packets_per_poll: int = 10_000_000,
        repair_accuracy: float = 0.8,
        service_days: float = 2.0,
        seed: int = 0,
        poll_interval_s: float = 900.0,
        debounce_confirm: int = 2,
        max_decisions: int = 4096,
        audit_maxlen: int = 1024,
        slo_rules=None,
        congestion_preset: Optional[str] = None,
        miswire_pairs: int = 0,
        sensing: str = "telemetry",
        obs: Recorder = NULL_RECORDER,
    ):
        require("sensing", sensing)
        self.scenario = scenario
        self.topo = scenario.topo_factory()
        cmodel = None
        if congestion_preset is not None:
            cmodel = congestion_model(
                congestion_preset,
                self.topo,
                seed=seed + _CONGESTION_SEED_OFFSET,
            )
        miswiring = None
        if miswire_pairs:
            miswiring = MiswiringFault.sample(
                self.topo, miswire_pairs, seed=seed + _MISWIRE_SEED_OFFSET
            )
        pipeline_cls = (
            FlowVotingSensing if sensing == "voting" else TelemetrySensing
        )
        extra = {} if sensing == "telemetry" else {"vote_seed": seed}
        self.pipeline = pipeline_cls(
            scenario.trace,
            scenario.constraint(),
            fault_config=fault_config,
            detection_threshold=detection_threshold,
            packets_per_poll=packets_per_poll,
            poll_interval_s=poll_interval_s,
            debounce_confirm=debounce_confirm,
            max_decisions=max_decisions,
            audit_maxlen=audit_maxlen,
            slo_rules=slo_rules,
            congestion_model=cmodel,
            miswiring=miswiring,
            **extra,
        )
        self.kernel = SimulationKernel(
            self.topo,
            duration_s=scenario.trace.duration_days * DAY_S,
            pipeline=self.pipeline,
            repair_accuracy=repair_accuracy,
            service_s=service_days * DAY_S,
            seed=seed,
            obs=obs,
        )

    # Historic surface, delegated to the kernel/pipeline ---------------- #

    @property
    def metrics(self):
        return self.kernel.metrics

    @property
    def chaos(self):
        return self.pipeline.chaos

    @property
    def store(self):
        return self.pipeline.store

    @property
    def sanitizer(self):
        return self.pipeline.sanitizer

    @property
    def transport(self):
        return self.pipeline.transport

    @property
    def poller(self):
        return self.pipeline.poller

    @property
    def audit(self):
        return self.pipeline.audit

    @property
    def controller(self):
        return self.pipeline.controller

    @property
    def diagnosis(self):
        """The cause-attribution ledger (``None`` on plain runs)."""
        return self.pipeline.diagnosis

    def run(self) -> RunResult:
        """Execute the scenario's full horizon, one poll event at a time."""
        return self.kernel.run()


def run_chaos_scenario(
    scenario: Scenario,
    fault_config: Optional[TelemetryFaultConfig] = None,
    **kwargs,
) -> RunResult:
    """Convenience wrapper: build and run a :class:`ChaosSimulation`."""
    return ChaosSimulation(scenario, fault_config=fault_config, **kwargs).run()


#: Named fault presets for the CLI and CI chaos-fuzz job.
CHAOS_PRESETS: Dict[str, TelemetryFaultConfig] = {
    "none": TelemetryFaultConfig(),
    "mild": TelemetryFaultConfig(
        missed_poll_rate=0.01,
        duplicate_rate=0.005,
        delay_rate=0.005,
        optical_garbage_rate=0.01,
    ),
    "harsh": TelemetryFaultConfig(
        missed_poll_rate=0.10,
        reset_rate=0.002,
        freeze_rate=0.01,
        duplicate_rate=0.02,
        delay_rate=0.02,
        wrap_32bit=True,
        optical_garbage_rate=0.05,
    ),
    "reboot-storm": TelemetryFaultConfig(reset_rate=0.02),
    "flaky-collector": TelemetryFaultConfig(
        missed_poll_rate=0.25, duplicate_rate=0.05, delay_rate=0.05
    ),
}


def chaos_preset(name: str, seed: int = 0) -> TelemetryFaultConfig:
    """Look up a preset by name, re-seeded."""
    if name not in CHAOS_PRESETS:
        raise ValueError(
            f"unknown chaos preset {name!r}; choose from {sorted(CHAOS_PRESETS)}"
        )
    base = CHAOS_PRESETS[name]
    return TelemetryFaultConfig(
        seed=seed,
        missed_poll_rate=base.missed_poll_rate,
        wrap_32bit=base.wrap_32bit,
        reset_rate=base.reset_rate,
        freeze_rate=base.freeze_rate,
        freeze_duration_polls=base.freeze_duration_polls,
        duplicate_rate=base.duplicate_rate,
        delay_rate=base.delay_rate,
        optical_garbage_rate=base.optical_garbage_rate,
    )
