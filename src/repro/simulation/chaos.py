"""Closed-loop chaos simulation: CorrOpt with telemetry in the loop.

The event-driven engine (:mod:`repro.simulation.engine`) hands ground-truth
corruption onsets straight to the strategy — it answers "how good are the
decisions when the inputs are perfect?".  This module answers the harder
question from the ISSUE: **how does CorrOpt behave when its inputs lie?**

Here nothing reaches the controller except through the monitoring path:

    trace onsets → topology ground truth → SNMP counters →
    (fault-injected transport) → sanitizer → store →
    detection → hardened controller → disable / fail-safe keep

Poll-driven, 15-minute granularity.  Telemetry faults (missed polls,
wraps, resets, freezes, duplicates, delays) are injected by a
:class:`~repro.faults.telemetry_faults.FaultyTransport`; the sanitizer
rates every sample and quarantines flaky directions; the hardened
controller refuses to disable on quarantined data.

Determinism contract: with a fault config whose rates are all zero (or no
config at all) the run is bit-identical to the fault-free run — the chaos
apparatus itself must not perturb the system it observes.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.controller import CorrOptController
from repro.core.resilience import AuditLog, CircuitBreaker, OnsetDebouncer
from repro.faults.telemetry_faults import FaultyTransport, TelemetryFaultConfig
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.simulation.metrics import ChaosMetrics, SimulationMetrics
from repro.simulation.scenarios import Scenario
from repro.telemetry.poller import SnmpPoller
from repro.telemetry.sanitizer import TelemetrySanitizer
from repro.telemetry.store import TelemetryStore
from repro.topology.elements import Direction, LinkId

DAY_S = 86_400.0


@dataclass
class ChaosResult:
    """Outcome of one closed-loop chaos run."""

    duration_s: float
    metrics: SimulationMetrics
    chaos: ChaosMetrics
    audit: AuditLog
    sanitizer_stats: "object"
    controller_log: "object"

    @property
    def penalty_integral(self) -> float:
        return self.metrics.total_penalty_integral(self.duration_s)

    def invariants_ok(self) -> bool:
        """The two hard invariants of the acceptance criteria."""
        return (
            self.chaos.quarantine_violations == 0
            and self.chaos.capacity_violations == 0
        )

    def fingerprint(self) -> Tuple:
        """Exact metric-series identity for bit-identical comparisons."""
        return (
            tuple(self.metrics.penalty.changes()),
            tuple(self.metrics.worst_tor_fraction.changes()),
            tuple(self.metrics.average_tor_fraction.changes()),
            self.metrics.onsets,
            self.metrics.disabled_on_onset,
            self.metrics.disabled_on_activation,
            self.metrics.repairs_completed,
        )


class ChaosSimulation:
    """Replay a scenario's trace with the telemetry pipeline in the loop.

    Args:
        scenario: Topology + trace + capacity preset.
        fault_config: Telemetry fault rates (``None`` = clean monitoring).
        detection_threshold: Sanitized corruption rate at which a report
            is raised to the controller.
        packets_per_poll: Offered packets per direction per poll; sets the
            smallest observable corruption rate (1 / packets_per_poll).
        repair_accuracy: First-attempt repair success probability (failed
            first attempts fold into a doubled stay, as in the engine).
        service_days: Ticket service time per attempt.
        seed: Seed for the repair RNG (independent of the telemetry fault
            RNG so fault injection never perturbs repair outcomes).
        poll_interval_s: Monitoring granularity.
        debounce_confirm: Consecutive confirming reports needed before the
            controller acts on an onset (1 = act immediately).
        max_decisions: Controller decision ring-buffer bound.
        obs: Observability recorder threaded through the whole closed loop
            (poller, sanitizer, controller, optimizer).  The default
            :data:`~repro.obs.recorder.NULL_RECORDER` preserves the
            determinism contract above bit-for-bit.
    """

    def __init__(
        self,
        scenario: Scenario,
        fault_config: Optional[TelemetryFaultConfig] = None,
        detection_threshold: float = 1e-7,
        packets_per_poll: int = 10_000_000,
        repair_accuracy: float = 0.8,
        service_days: float = 2.0,
        seed: int = 0,
        poll_interval_s: float = 900.0,
        debounce_confirm: int = 2,
        max_decisions: int = 4096,
        obs: Recorder = NULL_RECORDER,
    ):
        self.scenario = scenario
        self.topo = scenario.topo_factory()
        self.constraint = scenario.constraint()
        self.fault_config = fault_config
        self.detection_threshold = detection_threshold
        self.packets_per_poll = packets_per_poll
        self.repair_accuracy = repair_accuracy
        self.service_s = service_days * DAY_S
        self.poll_interval_s = poll_interval_s
        self.rng = random.Random(seed)
        self.obs = obs

        self.store = TelemetryStore()
        self.sanitizer = TelemetrySanitizer(
            interval_s=poll_interval_s, obs=obs
        )
        self.transport = (
            FaultyTransport(fault_config) if fault_config is not None else None
        )
        self.poller = SnmpPoller(
            self.topo,
            self.store,
            packets_fn=lambda _did, _t: self.packets_per_poll,
            interval_s=poll_interval_s,
            transport=self.transport,
            sanitizer=self.sanitizer,
            obs=obs,
        )
        self.audit = AuditLog()
        self.controller = CorrOptController(
            self.topo,
            self.constraint,
            quarantine_fn=self.sanitizer.link_quarantined,
            debouncer=OnsetDebouncer(
                confirm=debounce_confirm,
                window_s=3 * poll_interval_s,
                high=detection_threshold,
            ),
            optimizer_breaker=CircuitBreaker(),
            max_decisions=max_decisions,
            audit=self.audit,
            obs=obs,
        )

        self.metrics = SimulationMetrics()
        self.chaos = ChaosMetrics()
        # Ground truth bookkeeping: outstanding fault onset times and
        # which of them the telemetry pipeline has noticed.
        self._onset_time: Dict[LinkId, float] = {}
        self._detected: Set[LinkId] = set()
        self._repair_heap: List[Tuple[float, int, LinkId]] = []
        self._tiebreak = itertools.count()
        self._min_threshold = min(
            [self.constraint.default]
            + list(self.constraint.per_tor.values())
        )

    # ------------------------------------------------------------------ #

    def _schedule_repair(self, now: float, link_id: LinkId) -> None:
        attempts = 1 if self.rng.random() < self.repair_accuracy else 2
        done = now + attempts * self.service_s
        heapq.heappush(
            self._repair_heap, (done, next(self._tiebreak), link_id)
        )

    def _apply_onsets(self, events, now: float) -> None:
        """Write ground-truth corruption for onsets due by ``now``."""
        while events and events[0].time_s <= now:
            event = events.pop(0)
            for link_id, condition in zip(event.link_ids, event.conditions):
                link = self.topo.link(link_id)
                if not link.enabled or link_id in self._onset_time:
                    continue  # already mitigated or already corrupting
                self.metrics.onsets += 1
                self._onset_time[link_id] = event.time_s
                self.topo.set_corruption(
                    link_id, condition.fwd_rate, Direction.UP
                )
                if condition.rev_rate > 0:
                    self.topo.set_corruption(
                        link_id, condition.rev_rate, Direction.DOWN
                    )

    def _complete_repairs(self, now: float) -> None:
        while self._repair_heap and self._repair_heap[0][0] <= now:
            _done, _tie, link_id = heapq.heappop(self._repair_heap)
            self._onset_time.pop(link_id, None)
            self._detected.discard(link_id)
            self.metrics.repairs_completed += 1
            before = self.controller.log.disabled_by_optimizer
            result = self.controller.activate_link(
                link_id, repaired=True, time_s=now
            )
            newly = self.controller.log.disabled_by_optimizer - before
            self.metrics.disabled_on_activation += newly
            # Optimizer-driven disables also need repair visits (skip any
            # the fail-safe rule kept active despite the plan).
            for lid in sorted(result.to_disable):
                if not self.topo.link(lid).enabled and not self._pending_repair(
                    lid
                ):
                    self._schedule_repair(now, lid)

    def _pending_repair(self, link_id: LinkId) -> bool:
        return any(lid == link_id for _t, _n, lid in self._repair_heap)

    def _detect_and_report(self, now: float) -> None:
        """Raise controller reports from fresh telemetry samples."""
        for link in list(self.topo.links()):
            if not link.enabled:
                continue
            link_id = link.link_id
            for direction in (Direction.UP, Direction.DOWN):
                did = link.direction_id(direction)
                sample = self.store.last_sample(did)
                if sample is None:
                    continue
                time_s, corruption, _cong, _util, _quality = sample
                if time_s != now:
                    continue  # no fresh sample this tick
                if corruption < self.detection_threshold:
                    continue
                was_quarantined = self.sanitizer.link_quarantined(link_id)
                truly_corrupting = (
                    self.topo.link(link_id).max_corruption_rate() > 0
                )
                decision = self.controller.report_corruption(
                    link_id, corruption, direction, time_s=now
                )
                if truly_corrupting and link_id not in self._detected:
                    self._detected.add(link_id)
                    self.chaos.detections += 1
                    onset = self._onset_time.get(link_id, now)
                    self.chaos.detection_delay_polls += max(
                        0.0, (now - onset) / self.poll_interval_s
                    )
                if decision.disabled:
                    self.metrics.disabled_on_onset += 1
                    if was_quarantined:
                        self.chaos.quarantine_violations += 1
                    if not truly_corrupting:
                        self.chaos.false_disables += 1
                    self._schedule_repair(now, link_id)
                    break  # link is down; no point checking the other side
                elif decision.fast_check is not None:
                    self.metrics.kept_active_on_onset += 1

    def _snapshot(self, now: float) -> None:
        self.metrics.penalty.record(now, self.controller.current_penalty())
        worst = self.controller.worst_tor_fraction()
        self.metrics.worst_tor_fraction.record(now, worst)
        self.metrics.average_tor_fraction.record(
            now, self.controller.average_tor_fraction()
        )
        if worst < self._min_threshold - 1e-9:
            self.chaos.capacity_violations += 1
        quarantined = self.sanitizer.quarantined_directions()
        self.chaos.quarantined_peak = max(
            self.chaos.quarantined_peak, quarantined
        )

    def _scrape_final(self) -> None:
        """Export end-of-run stats from components that keep their own
        counters (path counter, optimizer, sanitizer) into the registry."""
        obs = self.obs
        obs.scrape_path_counter(self.controller.counter, role="controller")
        obs.scrape_optimizer_stats(
            self.controller.log.optimizer_stats, role="controller"
        )
        self.sanitizer.flush_obs_counts()
        for key, value in vars(self.sanitizer.stats).items():
            obs.gauge(f"sanitizer_stats_{key}", value)
        obs.gauge(
            "sanitizer_quarantined_directions",
            self.sanitizer.quarantined_directions(),
        )

    # ------------------------------------------------------------------ #

    def run(self) -> ChaosResult:
        """Execute the scenario's full horizon, one poll at a time."""
        duration_s = self.scenario.trace.duration_days * DAY_S
        events = sorted(self.scenario.trace.events, key=lambda e: e.time_s)
        num_polls = int(duration_s / self.poll_interval_s)

        obs = self.obs
        for _ in range(num_polls):
            now = self.poller.time_s + self.poll_interval_s
            obs.set_sim_time(now)
            with obs.span("tick", cat="chaos"):
                with obs.span("chaos.onsets", cat="chaos"):
                    self._apply_onsets(events, now)
                with obs.span("chaos.repair", cat="chaos"):
                    self._complete_repairs(now)
                # poll_once() emits its own poll > collect/sanitize/store
                # span subtree, nested under this tick.
                polled = self.poller.poll_once()
                assert polled == now
                self.chaos.polls += 1
                with obs.span("chaos.detect", cat="chaos"):
                    self._detect_and_report(now)
                self._snapshot(now)

        # Faults outstanding at the end that telemetry never surfaced.
        self.chaos.missed_mitigations = sum(
            1 for lid in self._onset_time if lid not in self._detected
        )
        self.chaos.missed_polls = self.poller.missed_polls
        self.chaos.degraded_samples = (
            self.sanitizer.stats.missing
            + self.sanitizer.stats.resets_detected
            + self.sanitizer.stats.freezes_detected
            + self.sanitizer.stats.duplicates_dropped
            + self.sanitizer.stats.out_of_order_dropped
        )
        self.chaos.decisions_in_degraded_mode = (
            self.controller.log.fail_safe_keeps
            + self.controller.log.optimizer_fallbacks
        )
        if obs.enabled:
            self._scrape_final()
        return ChaosResult(
            duration_s=duration_s,
            metrics=self.metrics,
            chaos=self.chaos,
            audit=self.audit,
            sanitizer_stats=self.sanitizer.stats,
            controller_log=self.controller.log,
        )


def run_chaos_scenario(
    scenario: Scenario,
    fault_config: Optional[TelemetryFaultConfig] = None,
    **kwargs,
) -> ChaosResult:
    """Convenience wrapper: build and run a :class:`ChaosSimulation`."""
    return ChaosSimulation(scenario, fault_config=fault_config, **kwargs).run()


#: Named fault presets for the CLI and CI chaos-fuzz job.
CHAOS_PRESETS: Dict[str, TelemetryFaultConfig] = {
    "none": TelemetryFaultConfig(),
    "mild": TelemetryFaultConfig(
        missed_poll_rate=0.01,
        duplicate_rate=0.005,
        delay_rate=0.005,
        optical_garbage_rate=0.01,
    ),
    "harsh": TelemetryFaultConfig(
        missed_poll_rate=0.10,
        reset_rate=0.002,
        freeze_rate=0.01,
        duplicate_rate=0.02,
        delay_rate=0.02,
        wrap_32bit=True,
        optical_garbage_rate=0.05,
    ),
    "reboot-storm": TelemetryFaultConfig(reset_rate=0.02),
    "flaky-collector": TelemetryFaultConfig(
        missed_poll_rate=0.25, duplicate_rate=0.05, delay_rate=0.05
    ),
}


def chaos_preset(name: str, seed: int = 0) -> TelemetryFaultConfig:
    """Look up a preset by name, re-seeded."""
    if name not in CHAOS_PRESETS:
        raise ValueError(
            f"unknown chaos preset {name!r}; choose from {sorted(CHAOS_PRESETS)}"
        )
    base = CHAOS_PRESETS[name]
    return TelemetryFaultConfig(
        seed=seed,
        missed_poll_rate=base.missed_poll_rate,
        wrap_32bit=base.wrap_32bit,
        reset_rate=base.reset_rate,
        freeze_rate=base.freeze_rate,
        freeze_duration_polls=base.freeze_duration_polls,
        duplicate_rate=base.duplicate_rate,
        delay_rate=base.delay_rate,
        optical_garbage_rate=base.optical_garbage_rate,
    )
