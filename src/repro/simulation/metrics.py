"""Metric containers for the mitigation simulations.

The §7 evaluations reduce to a few time-series metrics:

- **total penalty per second** (Figures 14, 17, 18, 19) — a step function
  that changes only when a link is disabled/enabled or starts corrupting;
- **worst/average ToR path fraction** (Figures 15, 16; §7.3) — also a step
  function over mitigation events.

:class:`StepSeries` stores such piecewise-constant series exactly and
supports time-integration and binning, so penalties integrate with no
sampling error.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, Tuple


class StepSeries:
    """A right-continuous step function recorded as (time, value) changes."""

    def __init__(self, initial_value: float = 0.0, start_s: float = 0.0):
        self._times: List[float] = [start_s]
        self._values: List[float] = [initial_value]

    def record(self, time_s: float, value: float) -> None:
        """Set the value from ``time_s`` onward.

        Equal-time updates overwrite (the last write at an instant wins);
        time must not go backwards.
        """
        if time_s < self._times[-1]:
            raise ValueError(
                f"time went backwards: {time_s} < {self._times[-1]}"
            )
        if time_s == self._times[-1]:
            self._values[-1] = value
            return
        if value == self._values[-1]:
            return  # no change; keep the series compact
        self._times.append(time_s)
        self._values.append(value)

    def value_at(self, time_s: float) -> float:
        """The value in effect at ``time_s``."""
        index = bisect_right(self._times, time_s) - 1
        return self._values[max(index, 0)]

    def integral(self, start_s: float, end_s: float) -> float:
        """∫ value dt over [start_s, end_s]."""
        if end_s < start_s:
            raise ValueError("end before start")
        total = 0.0
        times, values = self._times, self._values
        for i, value in enumerate(values):
            seg_start = max(times[i], start_s)
            seg_end = times[i + 1] if i + 1 < len(times) else end_s
            seg_end = min(seg_end, end_s)
            if seg_end > seg_start:
                total += value * (seg_end - seg_start)
        return total

    def mean(self, start_s: float, end_s: float) -> float:
        """Time-average over [start_s, end_s]."""
        if end_s <= start_s:
            return self.value_at(start_s)
        return self.integral(start_s, end_s) / (end_s - start_s)

    def binned(
        self, start_s: float, end_s: float, bin_s: float
    ) -> List[Tuple[float, float]]:
        """(bin start, time-averaged value) per bin — Figure 18's hourly
        penalty chunks."""
        if bin_s <= 0:
            raise ValueError("bin width must be positive")
        bins = []
        t = start_s
        while t < end_s:
            upper = min(t + bin_s, end_s)
            bins.append((t, self.mean(t, upper)))
            t += bin_s
        return bins

    def min_value(self) -> float:
        return min(self._values)

    def changes(self) -> List[Tuple[float, float]]:
        """All (time, value) change points."""
        return list(zip(self._times, self._values))

    def __len__(self) -> int:
        return len(self._times)


@dataclass
class SimulationMetrics:
    """Everything a mitigation run records.

    Attributes:
        penalty: Total penalty per second over time.
        worst_tor_fraction: Minimum ToR path fraction over time.
        average_tor_fraction: Mean ToR path fraction over time.
        onsets: Corruption onsets seen (per-link).
        disabled_on_onset: Links disabled by the onset-time check.
        kept_active_on_onset: Links the strategy had to keep active.
        disabled_on_activation: Links disabled by re-evaluation after an
            activation (the optimizer's contribution).
        repairs_completed: Links brought back after repair.
        failed_repairs: Re-disables after unsuccessful repairs
            (full-cycle mode only).
        effective_capacity: Mean *effective* ToR capacity fraction over
            time — like ``average_tor_fraction`` but weighting
            LinkGuardian-protected links by their reduced capacity.
            Stays flat at 1.0 (and is not recorded) for non-LG runs, so
            fingerprints of existing strategies are unaffected.
        lg_protections: Links placed under LinkGuardian protection.
    """

    penalty: StepSeries = field(default_factory=lambda: StepSeries(0.0))
    worst_tor_fraction: StepSeries = field(
        default_factory=lambda: StepSeries(1.0)
    )
    average_tor_fraction: StepSeries = field(
        default_factory=lambda: StepSeries(1.0)
    )
    onsets: int = 0
    disabled_on_onset: int = 0
    kept_active_on_onset: int = 0
    disabled_on_activation: int = 0
    repairs_completed: int = 0
    failed_repairs: int = 0
    effective_capacity: StepSeries = field(
        default_factory=lambda: StepSeries(1.0)
    )
    lg_protections: int = 0

    def total_penalty_integral(self, duration_s: float) -> float:
        """∫ penalty dt over the whole run — the Figure 17 numerator."""
        return self.penalty.integral(0.0, duration_s)


@dataclass
class ChaosMetrics:
    """What a telemetry-fault (chaos) run additionally records.

    These quantify mitigation quality when the monitoring itself lies:

    Attributes:
        polls: Poll ticks executed.
        missed_polls: Per-direction polls that never arrived.
        degraded_samples: Sanitized samples flagged non-OK.
        false_disables: Links disabled while their ground-truth corruption
            rate was zero (phantom corruption from bad telemetry).
        missed_mitigations: Ground-truth faults never detected by the
            telemetry pipeline by the end of the run.
        detections: Faults the pipeline did detect (first report).
        detection_delay_polls: Total polls between ground-truth onset and
            first detection, summed over ``detections``.
        decisions_in_degraded_mode: Controller decisions taken in degraded
            mode (fail-safe keeps, fallback sweeps).
        quarantined_peak: Peak number of simultaneously quarantined
            directions.
        quarantine_violations: Disables of quarantined links (the fail-safe
            invariant requires this to stay 0).
        capacity_violations: Ticks on which the worst ToR fraction fell
            below its constraint (must stay 0).
        miswires_flagged: Links flagged miswired by the active-probe
            cross-check (0 unless a miswiring fault is installed).
    """

    polls: int = 0
    missed_polls: int = 0
    degraded_samples: int = 0
    false_disables: int = 0
    missed_mitigations: int = 0
    detections: int = 0
    detection_delay_polls: float = 0.0
    decisions_in_degraded_mode: int = 0
    quarantined_peak: int = 0
    quarantine_violations: int = 0
    capacity_violations: int = 0
    miswires_flagged: int = 0

    def mean_detection_delay_polls(self) -> float:
        """Average onset→detection delay, in polls."""
        if self.detections == 0:
            return 0.0
        return self.detection_delay_polls / self.detections
