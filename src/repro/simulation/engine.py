"""The event-driven mitigation simulator (§7.1's experimental apparatus).

Replays a corruption trace against a topology under a mitigation strategy
and a repair model, recording exact (event-resolution) penalty and capacity
time series:

- corruption onsets arrive from the trace; the strategy decides whether to
  disable each newly corrupting link;
- disabled links enter repair; by default the paper's simplified model
  (repaired in 2 days with probability ``repair_accuracy``, else 4 days);
- on every activation the strategy may disable additional corrupting links
  ("Link activations allow other remaining corrupting links to be turned
  off", §5.1);
- optionally, full repair cycles are simulated (Figure 12): a failed
  repair re-enables a still-corrupting link, which is re-detected and
  re-disabled.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.optimizer import OptimizerStats
from repro.core.path_counting import PathCounter
from repro.core.penalty import PenaltyFn, linear_penalty
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.simulation.metrics import SimulationMetrics
from repro.simulation.strategies import MitigationStrategy
from repro.ticketing.queue import TechnicianPoolQueue
from repro.ticketing.ticket import Ticket
from repro.topology.elements import Direction, LinkId, LinkState
from repro.topology.graph import Topology
from repro.workloads.trace import CorruptionTrace

DAY_S = 86_400.0

_ONSET, _REPAIR, _POOL_CHECK = 0, 1, 2


@dataclass
class SimulationResult:
    """Outcome of one mitigation run."""

    strategy_name: str
    duration_s: float
    metrics: SimulationMetrics
    #: Aggregated optimizer search statistics, when the strategy ran the
    #: global optimizer (None for strategies that never invoke it).
    optimizer_stats: Optional[OptimizerStats] = None

    @property
    def penalty_integral(self) -> float:
        """∫ penalty dt over the run (the Figure-17 comparison quantity)."""
        return self.metrics.total_penalty_integral(self.duration_s)

    def mean_penalty(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.penalty_integral / self.duration_s


class MitigationSimulation:
    """Replay a trace under one strategy.

    Args:
        topo: Topology (mutated during the run; pass a copy to reuse).
        trace: Corruption-onset trace.
        strategy: Mitigation policy bound to ``topo``.
        repair_accuracy: First-attempt repair success probability (0.8 with
            CorrOpt recommendations, 0.5 without; §7.2).
        service_days: Ticket service time per attempt (§5.2: two days).
        penalty_fn: Penalty function ``I(f)``.
        seed: RNG seed for repair outcomes.
        track_capacity: Record ToR path-fraction series (costs one O(|E|)
            DP per state change).
        full_repair_cycles: Simulate failed repairs as re-enable →
            re-detect → re-disable cycles instead of folding them into a
            doubled service time.
        technician_pool: When set, repairs flow through a FIFO queue
            drained by this many technicians (the paper's observation that
            "the exact time needed for a fix depends on the number of
            tickets in the queue"), instead of the fixed 2-or-4-day model.
            Failed repairs resubmit the ticket for another service round.
        obs: Observability recorder; each processed event emits a span and
            per-kind counters (no-op by default).
    """

    def __init__(
        self,
        topo: Topology,
        trace: CorruptionTrace,
        strategy: MitigationStrategy,
        repair_accuracy: float = 0.8,
        service_days: float = 2.0,
        penalty_fn: PenaltyFn = linear_penalty,
        seed: int = 0,
        track_capacity: bool = True,
        full_repair_cycles: bool = False,
        technician_pool: Optional[int] = None,
        obs: Recorder = NULL_RECORDER,
    ):
        if not 0.0 <= repair_accuracy <= 1.0:
            raise ValueError("repair accuracy outside [0, 1]")
        self.topo = topo
        self.trace = trace
        self.strategy = strategy
        self.repair_accuracy = repair_accuracy
        self.service_s = service_days * DAY_S
        self.penalty_fn = penalty_fn
        self.rng = random.Random(seed)
        self.track_capacity = track_capacity
        self.full_repair_cycles = full_repair_cycles
        self.obs = obs
        self.metrics = SimulationMetrics()
        self._counter: Optional[PathCounter] = None
        if track_capacity:
            # Share the strategy's counter when it has one bound to this
            # topology (CorrOpt / fast-checker strategies do), so the run
            # maintains a single incremental DP instead of several.
            shared = getattr(strategy, "counter", None)
            if isinstance(shared, PathCounter) and shared.topo is topo:
                self._counter = shared
            else:
                self._counter = PathCounter(topo)
        # Links with an outstanding fault, in onset order.  Doubles as the
        # penalty support set: the total penalty only ranges over these, so
        # a snapshot costs O(#corrupting links) instead of O(|E|).
        self._rates: Dict[LinkId, float] = {
            lid: topo.link(lid).max_corruption_rate()
            for lid in topo.corrupting_links()
        }
        self._tiebreak = itertools.count()
        self._pool: Optional[TechnicianPoolQueue] = None
        self._next_pool_check: Optional[float] = None
        if technician_pool is not None:
            self._pool = TechnicianPoolQueue(
                num_technicians=technician_pool,
                service_time_s=self.service_s,
                obs=obs,
            )

    # ------------------------------------------------------------------ #

    def _current_penalty(self) -> float:
        """§5.1's ``sum_l (1 - d_l) * I(f_l)`` over the outstanding faults."""
        topo = self.topo
        total = 0.0
        for lid in self._rates:
            link = topo.link(lid)
            if link.enabled and link.is_corrupting():
                total += self.penalty_fn(link.max_corruption_rate())
        return total

    def _snapshot(self, time_s: float) -> None:
        self.metrics.penalty.record(time_s, self._current_penalty())
        if self._counter is not None:
            self.metrics.worst_tor_fraction.record(
                time_s, self._counter.worst_tor_fraction()
            )
            self.metrics.average_tor_fraction.record(
                time_s, self._counter.average_tor_fraction()
            )

    def _schedule_repair(self, heap, time_s: float, link_id: LinkId) -> None:
        if self._pool is not None:
            self._pool.submit(Ticket(link_id=link_id, created_s=time_s), time_s)
            self._schedule_pool_check(heap)
            return
        if self.full_repair_cycles:
            done = time_s + self.service_s
        else:
            # Paper model: failed first repairs fold into a doubled stay.
            attempts = 1 if self.rng.random() < self.repair_accuracy else 2
            done = time_s + attempts * self.service_s
        heapq.heappush(heap, (done, _REPAIR, next(self._tiebreak), link_id))

    def _schedule_pool_check(self, heap) -> None:
        """Schedule a wake-up at the pool's next completion time.

        At most one check is outstanding: a new one is pushed only when the
        next completion precedes the currently scheduled wake-up (duplicate
        entries for the same completion would pop as empty drains).
        """
        completion = self._pool.next_completion()
        if completion is None:
            return
        if (
            self._next_pool_check is not None
            and completion >= self._next_pool_check
        ):
            return
        self._next_pool_check = completion
        heapq.heappush(
            heap, (completion, _POOL_CHECK, next(self._tiebreak), None)
        )

    def run(self) -> SimulationResult:
        """Execute the full trace; returns the recorded metrics.

        Events are processed to the end of the heap — repairs landing after
        ``trace.duration_days`` still restore the topology — but the metric
        series only record samples inside the run window ``[0, duration]``,
        keeping ``StepSeries.min_value()``/``changes()`` consistent with
        ``penalty_integral`` (which clips to the same window).
        """
        heap = []
        for event in self.trace.events:
            heapq.heappush(
                heap, (event.time_s, _ONSET, next(self._tiebreak), event)
            )
        duration_s = self.trace.duration_days * DAY_S

        obs = self.obs
        _kind_names = {_ONSET: "onset", _REPAIR: "repair", _POOL_CHECK: "pool-check"}
        while heap:
            time_s, kind, _tie, payload = heapq.heappop(heap)
            obs.set_sim_time(time_s)
            with obs.span(f"sim.{_kind_names[kind]}", cat="engine"):
                if kind == _ONSET:
                    self._handle_onset(heap, time_s, payload)
                elif kind == _POOL_CHECK:
                    self._handle_pool_check(heap, time_s)
                else:
                    self._handle_repair_completion(heap, time_s, payload)
                if obs.enabled:
                    obs.count("sim_events_total", kind=_kind_names[kind])
            if time_s <= duration_s:
                self._snapshot(time_s)

        if obs.enabled and self._counter is not None:
            obs.scrape_path_counter(self._counter, role="engine")

        return SimulationResult(
            strategy_name=self.strategy.name,
            duration_s=duration_s,
            metrics=self.metrics,
            optimizer_stats=self.strategy.optimizer_stats,
        )

    # ------------------------------------------------------------------ #

    def _handle_onset(self, heap, time_s: float, event) -> None:
        for link_id, condition in zip(event.link_ids, event.conditions):
            link = self.topo.link(link_id)
            if not link.enabled or link_id in self._rates:
                continue  # already mitigated or already corrupting
            self.metrics.onsets += 1
            self._rates[link_id] = condition.fwd_rate
            self.topo.set_corruption(link_id, condition.fwd_rate, Direction.UP)
            if condition.rev_rate > 0:
                self.topo.set_corruption(
                    link_id, condition.rev_rate, Direction.DOWN
                )
            if self.strategy.on_onset(link_id):
                self.metrics.disabled_on_onset += 1
                self._schedule_repair(heap, time_s, link_id)
            else:
                self.metrics.kept_active_on_onset += 1

    def _handle_pool_check(self, heap, time_s: float) -> None:
        """Drain finished technician visits; failed repairs re-enter the
        queue for another service round (each failed attempt adds another
        full service time, §5.2)."""
        self._next_pool_check = None
        for ticket in self._pool.pop_due(time_s):
            if self.rng.random() < self.repair_accuracy:
                self.topo.clear_corruption(ticket.link_id)
                self._rates.pop(ticket.link_id, None)
                self.metrics.repairs_completed += 1
                self.topo.enable_link(ticket.link_id)
                for newly_disabled in self.strategy.on_activation():
                    self.metrics.disabled_on_activation += 1
                    self._schedule_repair(heap, time_s, newly_disabled)
            else:
                self.metrics.failed_repairs += 1
                self._pool.submit(
                    Ticket(link_id=ticket.link_id, created_s=time_s), time_s
                )
        self._schedule_pool_check(heap)

    def _handle_repair_completion(self, heap, time_s: float, link_id) -> None:
        success = True
        if self.full_repair_cycles:
            success = self.rng.random() < self.repair_accuracy
        if success:
            self.topo.clear_corruption(link_id)
            self._rates.pop(link_id, None)
            self.metrics.repairs_completed += 1
        else:
            self.metrics.failed_repairs += 1
        self.topo.enable_link(link_id)

        if not success:
            # Still corrupting: the monitoring pipeline re-detects it and
            # the strategy re-decides immediately (Figure 12's cycle).
            if self.strategy.on_onset(link_id):
                self._schedule_repair(heap, time_s, link_id)
                return

        # A genuine activation frees capacity: let the strategy re-evaluate
        # the corrupting links it previously had to keep active.
        for newly_disabled in self.strategy.on_activation():
            self.metrics.disabled_on_activation += 1
            self._schedule_repair(heap, time_s, newly_disabled)


def _comparison_task(payload) -> SimulationResult:
    """One strategy's comparison run (module-level so pools can pickle it)."""
    topo_factory, trace, factory, kwargs = payload
    topo = topo_factory()
    strategy = factory(topo)
    sim = MitigationSimulation(topo, trace, strategy, **kwargs)
    return sim.run()


def run_comparison(
    topo_factory,
    trace: CorruptionTrace,
    strategies: Dict[str, "StrategyFactory"],
    repair_accuracy: float = 0.8,
    seed: int = 0,
    track_capacity: bool = True,
    penalty_fn: Optional[PenaltyFn] = None,
    service_days: float = 2.0,
    full_repair_cycles: bool = False,
    technician_pool: Optional[int] = None,
    obs: Recorder = NULL_RECORDER,
    jobs: int = 1,
) -> Dict[str, SimulationResult]:
    """Run the same trace under several strategies on fresh topology copies.

    Args:
        topo_factory: Zero-arg callable producing a fresh topology.
        trace: Shared corruption trace.
        strategies: Mapping name → callable(topo) → strategy.
        repair_accuracy: Shared repair model (the paper isolates the
            disabling strategy by coupling both methods with the same
            repair effectiveness).
        seed: Shared repair RNG seed.
        track_capacity: Record ToR-fraction series.
        penalty_fn: Penalty function (default linear).
        service_days: Ticket service time per attempt, forwarded to every
            run (§5.2's two days by default).
        full_repair_cycles: Simulate failed repairs as re-enable →
            re-detect → re-disable cycles, forwarded to every run.
        technician_pool: Optional technician-pool size, forwarded to every
            run (ablations that vary the repair model route through here).
        obs: Observability recorder shared by every run (no-op by
            default); per-strategy work is distinguishable by the
            ``strategy`` span attribute.  Live recorders are
            serial-only — they hold process-local state that cannot be
            shipped to workers.
        jobs: Worker processes.  ``1`` (default) preserves the historic
            in-process loop bit-for-bit; ``>1`` fans strategies out via
            :class:`repro.parallel.ParallelRunner`, with results
            reassembled in ``strategies`` iteration order so the mapping
            is identical either way.

    Returns:
        Mapping name → result.
    """
    kwargs = dict(
        repair_accuracy=repair_accuracy,
        seed=seed,
        track_capacity=track_capacity,
        penalty_fn=penalty_fn or linear_penalty,
        service_days=service_days,
        full_repair_cycles=full_repair_cycles,
        technician_pool=technician_pool,
    )
    names = list(strategies)
    if jobs != 1 and len(names) > 1:
        if obs is not NULL_RECORDER:
            raise ValueError(
                "run_comparison(jobs>1) requires the default no-op "
                "recorder; live recorders are process-local"
            )
        from repro.parallel.runner import ParallelRunner

        payloads = [
            (topo_factory, trace, strategies[name], kwargs) for name in names
        ]
        runner = ParallelRunner(jobs=jobs)
        outcomes = runner.map_tasks(_comparison_task, payloads)
        return dict(zip(names, outcomes))

    results: Dict[str, SimulationResult] = {}
    for name, factory in strategies.items():
        topo = topo_factory()
        strategy = factory(topo)
        sim = MitigationSimulation(topo, trace, strategy, obs=obs, **kwargs)
        with obs.span("sim.run", cat="engine", strategy=name):
            results[name] = sim.run()
    return results


#: Type alias for documentation purposes.
StrategyFactory = object
