"""The event-driven mitigation simulator (§7.1's experimental apparatus).

Replays a corruption trace against a topology under a mitigation strategy
and a repair model, recording exact (event-resolution) penalty and capacity
time series:

- corruption onsets arrive from the trace; the strategy decides whether to
  disable each newly corrupting link;
- disabled links enter repair; by default the paper's simplified model
  (repaired in 2 days with probability ``repair_accuracy``, else 4 days);
- on every activation the strategy may disable additional corrupting links
  ("Link activations allow other remaining corrupting links to be turned
  off", §5.1);
- optionally, full repair cycles are simulated (Figure 12): a failed
  repair re-enables a still-corrupting link, which is re-detected and
  re-disabled.

Since the kernel unification, :class:`MitigationSimulation` is a thin shim
composing :class:`~repro.simulation.kernel.SimulationKernel` with
:class:`~repro.simulation.kernel.OracleSensing`; the event loop, repair
scheduling and snapshot bookkeeping live in :mod:`repro.simulation.kernel`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.penalty import PenaltyFn, linear_penalty
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.simulation.kernel import DAY_S, OracleSensing, SimulationKernel
from repro.simulation.results import RunResult, SimulationResult
from repro.simulation.strategies import MitigationStrategy
from repro.topology.graph import Topology
from repro.workloads.trace import CorruptionTrace

__all__ = [
    "DAY_S",
    "MitigationSimulation",
    "RunResult",
    "SimulationResult",
    "run_comparison",
]


class MitigationSimulation:
    """Replay a trace under one strategy (oracle sensing).

    Args:
        topo: Topology (mutated during the run; pass a copy to reuse).
        trace: Corruption-onset trace.
        strategy: Mitigation policy bound to ``topo``.
        repair_accuracy: First-attempt repair success probability (0.8 with
            CorrOpt recommendations, 0.5 without; §7.2).
        service_days: Ticket service time per attempt (§5.2: two days).
        penalty_fn: Penalty function ``I(f)``.
        seed: RNG seed for repair outcomes.
        track_capacity: Record ToR path-fraction series (costs one O(|E|)
            DP per state change).
        full_repair_cycles: Simulate failed repairs as re-enable →
            re-detect → re-disable cycles instead of folding them into a
            doubled service time.
        technician_pool: When set, repairs flow through a FIFO queue
            drained by this many technicians (the paper's observation that
            "the exact time needed for a fix depends on the number of
            tickets in the queue"), instead of the fixed 2-or-4-day model.
            Failed repairs resubmit the ticket for another service round.
        obs: Observability recorder; each processed event emits a span and
            per-kind counters (no-op by default).
    """

    def __init__(
        self,
        topo: Topology,
        trace: CorruptionTrace,
        strategy: MitigationStrategy,
        repair_accuracy: float = 0.8,
        service_days: float = 2.0,
        penalty_fn: PenaltyFn = linear_penalty,
        seed: int = 0,
        track_capacity: bool = True,
        full_repair_cycles: bool = False,
        technician_pool: Optional[int] = None,
        obs: Recorder = NULL_RECORDER,
    ):
        self.topo = topo
        self.trace = trace
        self.strategy = strategy
        self.pipeline = OracleSensing(
            trace,
            strategy,
            penalty_fn=penalty_fn,
            track_capacity=track_capacity,
        )
        self.kernel = SimulationKernel(
            topo,
            duration_s=trace.duration_days * DAY_S,
            pipeline=self.pipeline,
            repair_accuracy=repair_accuracy,
            service_s=service_days * DAY_S,
            seed=seed,
            full_repair_cycles=full_repair_cycles,
            technician_pool=technician_pool,
            obs=obs,
        )

    # Historic surface, delegated to the kernel/pipeline ---------------- #

    @property
    def metrics(self):
        return self.kernel.metrics

    @property
    def rng(self):
        return self.kernel.rng

    @property
    def obs(self):
        return self.kernel.obs

    @property
    def _pool(self):
        return self.kernel._pool

    @property
    def _next_pool_check(self):
        return self.kernel._next_pool_check

    @property
    def _counter(self):
        return self.pipeline._counter

    @property
    def _rates(self):
        return self.pipeline._rates

    def run(self) -> RunResult:
        """Execute the full trace; returns the recorded metrics.

        Events are processed to the end of the heap — repairs landing after
        ``trace.duration_days`` still restore the topology — but the metric
        series only record samples inside the run window ``[0, duration]``,
        keeping ``StepSeries.min_value()``/``changes()`` consistent with
        ``penalty_integral`` (which clips to the same window).
        """
        return self.kernel.run()


def _comparison_task(payload) -> RunResult:
    """One strategy's comparison run (module-level so pools can pickle it)."""
    topo_factory, trace, factory, kwargs = payload
    topo = topo_factory()
    strategy = factory(topo)
    sim = MitigationSimulation(topo, trace, strategy, **kwargs)
    return sim.run()


def run_comparison(
    topo_factory,
    trace: CorruptionTrace,
    strategies: Dict[str, "StrategyFactory"],
    repair_accuracy: float = 0.8,
    seed: int = 0,
    track_capacity: bool = True,
    penalty_fn: Optional[PenaltyFn] = None,
    service_days: float = 2.0,
    full_repair_cycles: bool = False,
    technician_pool: Optional[int] = None,
    obs: Recorder = NULL_RECORDER,
    jobs: int = 1,
) -> Dict[str, RunResult]:
    """Run the same trace under several strategies on fresh topology copies.

    Args:
        topo_factory: Zero-arg callable producing a fresh topology.
        trace: Shared corruption trace.
        strategies: Mapping name → callable(topo) → strategy.
        repair_accuracy: Shared repair model (the paper isolates the
            disabling strategy by coupling both methods with the same
            repair effectiveness).
        seed: Shared repair RNG seed.
        track_capacity: Record ToR-fraction series.
        penalty_fn: Penalty function (default linear).
        service_days: Ticket service time per attempt, forwarded to every
            run (§5.2's two days by default).
        full_repair_cycles: Simulate failed repairs as re-enable →
            re-detect → re-disable cycles, forwarded to every run.
        technician_pool: Optional technician-pool size, forwarded to every
            run (ablations that vary the repair model route through here).
        obs: Observability recorder shared by every run (no-op by
            default); per-strategy work is distinguishable by the
            ``strategy`` span attribute.  Live recorders are
            serial-only — they hold process-local state that cannot be
            shipped to workers.
        jobs: Worker processes.  ``1`` (default) preserves the historic
            in-process loop bit-for-bit; ``>1`` fans strategies out via
            :class:`repro.parallel.ParallelRunner`, with results
            reassembled in ``strategies`` iteration order so the mapping
            is identical either way.

    Returns:
        Mapping name → result.
    """
    kwargs = dict(
        repair_accuracy=repair_accuracy,
        seed=seed,
        track_capacity=track_capacity,
        penalty_fn=penalty_fn or linear_penalty,
        service_days=service_days,
        full_repair_cycles=full_repair_cycles,
        technician_pool=technician_pool,
    )
    names = list(strategies)
    if jobs != 1 and len(names) > 1:
        if obs is not NULL_RECORDER:
            raise ValueError(
                "run_comparison(jobs>1) requires the default no-op "
                "recorder; live recorders are process-local"
            )
        from repro.parallel.runner import ParallelRunner

        payloads = [
            (topo_factory, trace, strategies[name], kwargs) for name in names
        ]
        runner = ParallelRunner(jobs=jobs)
        outcomes = runner.map_tasks(_comparison_task, payloads)
        return dict(zip(names, outcomes))

    results: Dict[str, RunResult] = {}
    for name, factory in strategies.items():
        topo = topo_factory()
        strategy = factory(topo)
        sim = MitigationSimulation(topo, trace, strategy, obs=obs, **kwargs)
        with obs.span("sim.run", cat="engine", strategy=name):
            results[name] = sim.run()
    return results


#: Type alias for documentation purposes.
StrategyFactory = object
