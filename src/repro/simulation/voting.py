"""007-style flow-voting sensing: localize by path blame, not counters.

007 (NSDI'18; see PAPERS.md) localizes lossy links *without trusting
per-link counters*: every flow that suffers drops votes for the links on
its path, and the tally concentrates on the culprit because healthy
links appear on failed and successful paths alike.  That makes voting
the natural cross-check for the two failure modes counter-driven
sensing cannot see past — miswired attribution (the counters describe a
different cable) and congestion-only loss (drops with no FCS
signature).

:class:`FlowVotingSensing` rides the same kernel contract as
:class:`~repro.simulation.kernel.TelemetrySensing` and feeds its blame
through the same :class:`~repro.core.diagnosis.LinkDiagnosis` boundary:

1. each poll, a fixed seeded flow population is routed by live ECMP
   (disabled links drop out automatically, so mitigation reshapes the
   electorate exactly as §8 describes);
2. each routed flow fails with the path's ground-truth loss probability
   (corruption follows the physical cable; queue loss comes from the
   congestion channel of the telemetry store);
3. failed flows split one vote evenly over their path links;
4. accused links (tally ≥ quorum) are cross-checked against counters:
   counter-confirmed blame goes through the ordinary cause classifier,
   counter-*denied* blame becomes a vote-sourced report carrying the
   path-measured rate (this is what survives a wrong inventory map),
   and blame explained by congestion alone is ledgered but never acted
   on.

Everything is seeded arithmetic (``vote_seed`` + poll index), so runs
are byte-identical across worker counts and checkpoint/resume.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.core.diagnosis import (
    CAUSE_CONGESTION,
    CAUSE_CORRUPTION,
    CAUSE_MISWIRED,
)
from repro.routing.ecmp import EcmpRouter
from repro.simulation.kernel import SimulationKernel, TelemetrySensing
from repro.topology.elements import Direction, LinkId
from repro.workloads.flows import sample_flow_population

__all__ = ["FlowVotingSensing"]


class FlowVotingSensing(TelemetrySensing):
    """Telemetry sensing whose detector is a flow-voting localizer.

    Args:
        flows_per_tor: Flows sourced at each ToR (the electorate size).
        packets_per_flow: Packets a flow sends per poll; sets the
            smallest loss rate a flow vote can plausibly surface
            (a link losing ``1/packets_per_flow`` fails ~63% of its
            flows).
        vote_quorum: Minimum vote tally before a link is treated as
            accused (votes are split ``1/len(path)`` per failed flow).
        max_candidates: Accused links cross-checked per poll, in
            descending-tally order (bounds per-poll controller load).
        vote_seed: Seeds both the flow population and the per-poll
            failure draws (``vote_seed`` + poll index).

    Remaining arguments match :class:`TelemetrySensing`.
    """

    def __init__(
        self,
        *args,
        flows_per_tor: int = 16,
        packets_per_flow: int = 1_000_000,
        vote_quorum: float = 1.0,
        max_candidates: int = 16,
        vote_seed: int = 0,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.flows_per_tor = flows_per_tor
        self.packets_per_flow = packets_per_flow
        self.vote_quorum = vote_quorum
        self.max_candidates = max_candidates
        self.vote_seed = vote_seed

    def _diagnosis_active(self) -> bool:
        # The localizer's whole output is diagnoses; always keep the
        # accuracy ledger.
        return True

    def attach(self, kernel: SimulationKernel) -> None:
        super().attach(kernel)
        self._flows = sample_flow_population(
            kernel.topo, self.flows_per_tor, seed=self.vote_seed
        )
        self._router = EcmpRouter(kernel.topo)

    # -- the voting detector -------------------------------------------- #

    def _path_loss(self, link_id: LinkId, now: float) -> float:
        """Ground-truth loss a packet sees crossing ``link_id`` upward.

        Corruption follows the physical cable (flows do not consult the
        inventory map), so voting localizes correctly even when counter
        attribution is miswired.  Queue loss comes from the store's
        congestion channel — the sanitized estimate an operator could
        subtract, keeping the model honest about what 007 can know.
        """
        link = self.kernel.topo.link(link_id)
        loss = link.corruption_rate[Direction.UP]
        if self._congestion_model is not None:
            sample = self.store.last_sample(link.direction_id(Direction.UP))
            if sample is not None and sample[0] == now:
                loss += sample[2]
        return loss

    def _tally_votes(self, now: float) -> Dict[LinkId, float]:
        """Route the electorate; failed flows split a vote over their path."""
        rng = random.Random((self.vote_seed << 20) + int(now))
        votes: Dict[LinkId, float] = {}
        for flow in self._flows:
            path = self._router.up_path(flow)
            if not path:
                continue
            p_ok = 1.0
            for lid in path:
                loss = min(1.0, self._path_loss(lid, now))
                if loss > 0.0:
                    p_ok *= (1.0 - loss) ** self.packets_per_flow
            # One draw per routed flow, loss or not, so the RNG stream
            # never depends on float comparisons against thresholds.
            if rng.random() < p_ok:
                continue
            share = 1.0 / len(path)
            for lid in path:
                votes[lid] = votes.get(lid, 0.0) + share
        return votes

    def _detect_and_report(self, now: float) -> None:
        topo = self.kernel.topo
        votes = self._tally_votes(now)
        candidates = sorted(votes.items(), key=lambda kv: (-kv[1], kv[0]))
        examined = 0
        for link_id, tally in candidates:
            if tally < self.vote_quorum or examined >= self.max_candidates:
                break
            link = topo.link(link_id)
            if not link.enabled:
                continue
            examined += 1
            # Counter cross-check: the freshest, worst FCS evidence.
            best_direction: Optional[Direction] = None
            best_rate = 0.0
            for direction in (Direction.UP, Direction.DOWN):
                sample = self.store.last_sample(link.direction_id(direction))
                if sample is None or sample[0] != now:
                    continue
                if best_direction is None or sample[1] > best_rate:
                    best_direction = direction
                    best_rate = sample[1]
            true_rate = link.max_corruption_rate()
            if (
                best_direction is not None
                and best_rate >= self.detection_threshold
            ):
                # Counters confirm the accusation: the ordinary
                # classifier decides (congestion/miswire evidence may
                # still veto mitigation).
                did = link.direction_id(best_direction)
                diagnosis = self._diagnose(
                    link,
                    best_direction,
                    did,
                    self.store.last_sample(did),
                    now,
                )
                self._note_diagnosis(link_id, did, diagnosis)
                if not diagnosis.actionable():
                    continue
                self._report_and_account(now, link_id, best_direction, best_rate)
            elif true_rate >= self.detection_threshold:
                # Counters deny what the flows experienced — the A3
                # regime (or dead counters).  Vote-sourced blame carries
                # the path-measured rate, so the physical culprit is
                # mitigated despite the wrong map.
                up = link.corruption_rate[Direction.UP]
                down = link.corruption_rate[Direction.DOWN]
                direction = Direction.UP if up >= down else Direction.DOWN
                diagnosed = (
                    CAUSE_MISWIRED
                    if self._miswiring is not None
                    and self._miswiring.affects(link_id)
                    else CAUSE_CORRUPTION
                )
                key = ("vote", link_id)
                if key not in self._diagnosis_noted:
                    self._diagnosis_noted.add(key)
                    self.diagnosis.note(self._true_cause(link_id), diagnosed)
                self._report_and_account(now, link_id, direction, true_rate)
            else:
                # Blame fully explained by congestion: ledger it (when
                # the link's own drops channel corroborates), never
                # mitigate (the discrimination guarantee).  Accusations
                # with neither FCS nor drop evidence are bystanders on a
                # failed path — dropped without a verdict.
                drops = 0.0
                for direction in (Direction.UP, Direction.DOWN):
                    sample = self.store.last_sample(
                        link.direction_id(direction)
                    )
                    if sample is not None and sample[0] == now:
                        drops = max(drops, sample[2])
                if drops < self.classifier.congestion_threshold:
                    continue
                key = ("vote", link_id)
                if key not in self._diagnosis_noted:
                    self._diagnosis_noted.add(key)
                    self.diagnosis.note(
                        self._true_cause(link_id), CAUSE_CONGESTION
                    )
