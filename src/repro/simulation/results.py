"""Unified run results shared by every sensing pipeline.

Historically the repo carried two copy-pasted result types:
``SimulationResult`` (oracle sensing, :mod:`repro.simulation.engine`) and
``ChaosResult`` (telemetry sensing, :mod:`repro.simulation.chaos`), each
with its own ``penalty_integral`` / ``mean_penalty`` and — on the chaos
side — ``fingerprint`` / ``invariants_ok``.  :class:`RunResult` supersedes
both: the chaos-only payloads are optional sections that stay ``None``
for oracle runs, and the old names remain importable as deprecation
aliases so downstream code keeps working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.optimizer import OptimizerStats
from repro.simulation.metrics import ChaosMetrics, SimulationMetrics


@dataclass
class RunResult:
    """Outcome of one kernel run, whatever the sensing pipeline.

    The first four fields preserve ``SimulationResult``'s positional
    order; the optional chaos sections preserve ``ChaosResult``'s keyword
    surface (``chaos``, ``audit``, ``sanitizer_stats``,
    ``controller_log``).
    """

    strategy_name: str = ""
    duration_s: float = 0.0
    metrics: SimulationMetrics = field(default_factory=SimulationMetrics)
    #: Aggregated optimizer search statistics, when the strategy ran the
    #: global optimizer (None for strategies that never invoke it).
    optimizer_stats: Optional[OptimizerStats] = None
    #: Telemetry-sensing extras; ``None`` for oracle-sensing runs.
    chaos: Optional[ChaosMetrics] = None
    audit: object = None
    sanitizer_stats: object = None
    controller_log: object = None
    #: Event-time health report (:class:`repro.obs.health.HealthReport`);
    #: ``None`` for oracle-sensing runs.
    health: object = None
    #: Cause-attribution ledger (:class:`repro.core.diagnosis.
    #: DiagnosisStats`); ``None`` unless the run had a congestion
    #: co-model, a miswiring fault, or a voting localizer — absent on
    #: every historical configuration so legacy artifacts are unchanged.
    diagnosis: object = None

    @property
    def penalty_integral(self) -> float:
        """∫ penalty dt over the run (the Figure-17 comparison quantity)."""
        return self.metrics.total_penalty_integral(self.duration_s)

    def mean_penalty(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.penalty_integral / self.duration_s

    def invariants_ok(self) -> bool:
        """The chaos acceptance invariants (vacuously true without a
        chaos section): never disable on quarantined data, never sink a
        ToR below its capacity threshold."""
        if self.chaos is None:
            return True
        return (
            self.chaos.quarantine_violations == 0
            and self.chaos.capacity_violations == 0
        )

    def fingerprint(self) -> Tuple:
        """Exact metric-series identity for bit-identical comparisons."""
        return (
            tuple(self.metrics.penalty.changes()),
            tuple(self.metrics.worst_tor_fraction.changes()),
            tuple(self.metrics.average_tor_fraction.changes()),
            self.metrics.onsets,
            self.metrics.disabled_on_onset,
            self.metrics.disabled_on_activation,
            self.metrics.repairs_completed,
        )


#: Deprecated aliases — importable names predating the unified kernel.
SimulationResult = RunResult
ChaosResult = RunResult
