"""Mitigation strategies: the policies §7.1 compares.

A strategy answers two questions against a live topology:

- ``on_onset(link_id)`` — a link just started corrupting; disable it?
- ``on_activation()`` — a link just came back; which previously
  kept-active corrupting links can be disabled now?

Implementations:

- :class:`CorrOptStrategy` — fast checker on onset, global optimizer on
  activation (the paper's system);
- :class:`FastCheckerOnlyStrategy` — fast checker for both (the Figure-18
  ablation);
- :class:`SwitchLocalStrategy` — the production baseline;
- :class:`NoMitigationStrategy` — never disables (scale reference);
- :class:`DrainStrategy` — §8 extension: drains traffic instead of hard
  disable (same decisions as CorrOpt; drained links keep monitoring alive);
- :class:`LinkGuardianStrategy` — rival from SIGCOMM'23 "LinkGuardian:
  Mitigating the impact of packet corruption loss": link-local
  retransmission keeps a corrupting link *up* at a tiny residual loss rate
  and slightly reduced capacity, instead of disabling it;
- :class:`LinkGuardianCorrOptStrategy` — the combined policy: LG where the
  port hardware supports it, CorrOpt's fast check / optimizer elsewhere.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.core.constraints import CapacityConstraint
from repro.core.fast_checker import FastChecker
from repro.core.optimizer import GlobalOptimizer, OptimizerStats
from repro.core.path_counting import PathCounter
from repro.core.penalty import PenaltyFn, linear_penalty
from repro.core.switch_local import SwitchLocalChecker
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.topology.elements import LinkId
from repro.topology.graph import Topology


class MitigationStrategy:
    """Interface; see module docstring.

    Strategies that count paths expose their :class:`PathCounter` as
    ``counter`` so the simulation engine can share it (one incremental DP
    per run) instead of constructing its own.  Strategies that run the
    global optimizer accumulate its search statistics in
    ``optimizer_stats`` (None for strategies that never invoke it).
    """

    name = "abstract"
    counter: Optional[PathCounter] = None
    optimizer_stats: Optional[OptimizerStats] = None

    def on_onset(self, link_id: LinkId) -> bool:
        """Return True (and disable the link) when it can safely go down."""
        raise NotImplementedError

    def on_activation(self) -> List[LinkId]:
        """Re-evaluate after an activation; return newly disabled links."""
        raise NotImplementedError


class CorrOptStrategy(MitigationStrategy):
    """The full CorrOpt policy (§5.1): fast checker + optimizer."""

    name = "corropt"

    def __init__(
        self,
        topo: Topology,
        constraint: CapacityConstraint,
        penalty_fn: PenaltyFn = linear_penalty,
        obs: Recorder = NULL_RECORDER,
    ):
        self.topo = topo
        self.obs = obs
        self.counter = PathCounter(topo, obs=obs)
        self.fast_checker = FastChecker(
            topo, constraint, counter=self.counter, obs=obs
        )
        self.optimizer = GlobalOptimizer(
            topo, constraint, penalty_fn=penalty_fn, counter=self.counter,
            obs=obs,
        )
        self.optimizer_stats = OptimizerStats()

    def on_onset(self, link_id: LinkId) -> bool:
        return self.fast_checker.check_and_disable(link_id).allowed

    def on_activation(self) -> List[LinkId]:
        result = self.optimizer.optimize()
        self.optimizer_stats.merge(result.stats)
        return sorted(result.to_disable)


class FastCheckerOnlyStrategy(MitigationStrategy):
    """Fast checker everywhere (greedy re-sweep on activation)."""

    name = "fast-checker-only"

    def __init__(
        self,
        topo: Topology,
        constraint: CapacityConstraint,
        obs: Recorder = NULL_RECORDER,
    ):
        self.topo = topo
        self.obs = obs
        self.counter = PathCounter(topo, obs=obs)
        self.fast_checker = FastChecker(
            topo, constraint, counter=self.counter, obs=obs
        )

    def on_onset(self, link_id: LinkId) -> bool:
        return self.fast_checker.check_and_disable(link_id).allowed

    def on_activation(self) -> List[LinkId]:
        results = self.fast_checker.sweep(self.topo.corrupting_links())
        return [r.link_id for r in results if r.allowed]


class SwitchLocalStrategy(MitigationStrategy):
    """Today's practice: local uplink-count thresholds (§5.1)."""

    name = "switch-local"

    def __init__(
        self,
        topo: Topology,
        constraint: CapacityConstraint,
        sc: Optional[float] = None,
    ):
        self.topo = topo
        self.checker = SwitchLocalChecker(topo, constraint, sc=sc)

    def on_onset(self, link_id: LinkId) -> bool:
        return self.checker.check_and_disable(link_id).allowed

    def on_activation(self) -> List[LinkId]:
        return self.checker.reevaluate()


class NoMitigationStrategy(MitigationStrategy):
    """Never disable anything; corruption accumulates unchecked.

    §2 estimates that without the existing mitigation system, corruption
    losses "would be two orders of magnitude higher" — this strategy is
    the reference point for that claim.
    """

    name = "none"

    def __init__(self, topo: Topology):
        self.topo = topo

    def on_onset(self, link_id: LinkId) -> bool:
        return False

    def on_activation(self) -> List[LinkId]:
        return []


# --------------------------------------------------------------------- #
# LinkGuardian performance model
# --------------------------------------------------------------------- #

#: Loss-rate → (effective loss rate, effective capacity fraction) anchor
#: points for LinkGuardian's link-local retransmission (SIGCOMM'23).  The
#: paper reports near-lossless operation (residual loss ~1e-9..1e-8) with
#: ≥93% effective link speed up to ~1e-2 loss; retransmission overhead —
#: and hence both residual loss and capacity cost — grows with the raw
#: loss rate.  Rows must be sorted by loss rate, with effective loss
#: non-decreasing and effective capacity non-increasing.
LG_PERFORMANCE_TABLE: Tuple[Tuple[float, float, float], ...] = (
    (1e-6, 1e-9, 0.999),
    (1e-5, 2e-9, 0.998),
    (1e-4, 5e-9, 0.995),
    (1e-3, 1e-8, 0.985),
    (1e-2, 1e-7, 0.930),
)

#: Above this raw loss rate LinkGuardian cannot keep up (retransmissions
#: would collapse goodput) and the link must be handled conventionally.
LG_MAX_LOSS_RATE = 1e-2


def _validate_lg_table(
    table: Tuple[Tuple[float, float, float], ...]
) -> None:
    if not table:
        raise ValueError("LG performance table must not be empty")
    prev = None
    for row in table:
        rate, eff_loss, eff_cap = row
        if rate <= 0.0 or not 0.0 <= eff_loss <= rate or not 0.0 < eff_cap <= 1.0:
            raise ValueError(f"invalid LG table row {row}")
        if prev is not None:
            if rate <= prev[0]:
                raise ValueError("LG table loss rates must increase")
            if eff_loss < prev[1]:
                raise ValueError("LG table effective loss must be monotone")
            if eff_cap > prev[2]:
                raise ValueError("LG table capacity must be non-increasing")
        prev = row


_validate_lg_table(LG_PERFORMANCE_TABLE)


def lg_performance(
    rate: float,
    table: Tuple[Tuple[float, float, float], ...] = LG_PERFORMANCE_TABLE,
) -> Tuple[float, float]:
    """Effective (loss rate, capacity fraction) under LG at raw ``rate``.

    Log-space interpolation between table anchors: effective loss is
    interpolated in log-log (both axes span decades), capacity linearly
    against log10(rate).  Outside the table the end rows clamp.  The
    result is monotone in ``rate`` — non-decreasing residual loss,
    non-increasing capacity — because the table rows are and the
    interpolation preserves order between anchors.
    """
    if rate <= 0.0:
        return (0.0, 1.0)
    if rate <= table[0][0]:
        return (min(table[0][1], rate), table[0][2])
    if rate >= table[-1][0]:
        return (table[-1][1], table[-1][2])
    log_rate = math.log10(rate)
    for i in range(len(table) - 1):
        lo, hi = table[i], table[i + 1]
        if lo[0] <= rate <= hi[0]:
            span = math.log10(hi[0]) - math.log10(lo[0])
            t = (log_rate - math.log10(lo[0])) / span
            log_loss = (
                math.log10(lo[1]) + t * (math.log10(hi[1]) - math.log10(lo[1]))
            )
            eff_loss = 10.0 ** log_loss
            eff_cap = lo[2] + t * (hi[2] - lo[2])
            return (min(eff_loss, rate), eff_cap)
    raise AssertionError("unreachable: table scan failed")  # pragma: no cover


class LinkGuardianStrategy(MitigationStrategy):
    """Pure LinkGuardian: protect where capable, never disable.

    A corrupting link on an LG-capable port is placed under link-local
    retransmission: it stays ENABLED at the performance table's residual
    loss and reduced capacity, and — since the loss is masked rather than
    repaired — no repair is ever scheduled for it.  Links on non-capable
    ports (or corrupting beyond ``max_loss_rate``) are left alone, like
    :class:`NoMitigationStrategy`; that is the honest standalone-LG
    baseline the tournament compares against.
    """

    name = "linkguardian"

    def __init__(
        self,
        topo: Topology,
        constraint: CapacityConstraint,
        obs: Recorder = NULL_RECORDER,
        max_loss_rate: float = LG_MAX_LOSS_RATE,
    ):
        self.topo = topo
        self.obs = obs
        self.counter = PathCounter(topo, obs=obs)
        self.max_loss_rate = max_loss_rate
        self.protections = 0

    def _try_protect(self, link_id: LinkId) -> bool:
        link = self.topo.link(link_id)
        if not link.lg_capable or link.lg_protected:
            return link.lg_protected
        rate = link.max_corruption_rate()
        if rate > self.max_loss_rate:
            return False
        eff_loss, eff_cap = lg_performance(rate)
        self.topo.protect_link(link_id, eff_loss, eff_cap)
        self.protections += 1
        return True

    def on_onset(self, link_id: LinkId) -> bool:
        self._try_protect(link_id)
        # Never disable: either the link is now protected (loss masked) or
        # LG cannot help and the link stays up corrupting.
        return False

    def on_activation(self) -> List[LinkId]:
        return []


class LinkGuardianCorrOptStrategy(CorrOptStrategy):
    """Combined policy: LG where capable, CorrOpt everywhere else.

    Onset: protect the link if its port is LG-capable and the loss rate is
    within LG's operating range; otherwise fall through to CorrOpt's fast
    check.  Activation: run the global optimizer over the corrupting links
    that are *not* under protection (a protected link is already
    mitigated; disabling it would waste a repair on masked loss).
    """

    name = "lg+corropt"

    def __init__(
        self,
        topo: Topology,
        constraint: CapacityConstraint,
        penalty_fn: PenaltyFn = linear_penalty,
        obs: Recorder = NULL_RECORDER,
        max_loss_rate: float = LG_MAX_LOSS_RATE,
    ):
        super().__init__(topo, constraint, penalty_fn=penalty_fn, obs=obs)
        self.max_loss_rate = max_loss_rate
        self.protections = 0

    _try_protect = LinkGuardianStrategy._try_protect

    def on_onset(self, link_id: LinkId) -> bool:
        if self._try_protect(link_id):
            return False
        return self.fast_checker.check_and_disable(link_id).allowed

    def on_activation(self) -> List[LinkId]:
        candidates = [
            lid
            for lid in self.topo.corrupting_links()
            if not self.topo.link(lid).lg_protected
        ]
        result = self.optimizer.optimize(candidates)
        self.optimizer_stats.merge(result.stats)
        return sorted(result.to_disable)


class DrainStrategy(CorrOptStrategy):
    """§8 extension: remove traffic instead of hard-disabling.

    Decision logic is identical to CorrOpt (a drained link provides no
    capacity either), but links are put in the DRAINED state so optical
    monitoring keeps flowing and repairs can be verified with test traffic
    before re-admitting production traffic.
    """

    name = "drain"

    def on_onset(self, link_id: LinkId) -> bool:
        allowed = self.fast_checker.check(link_id).allowed
        if allowed:
            self.topo.drain_link(link_id)
        return allowed

    def on_activation(self) -> List[LinkId]:
        result = self.optimizer.plan()
        self.optimizer_stats.merge(result.stats)
        for lid in result.to_disable:
            self.topo.drain_link(lid)
        return sorted(result.to_disable)


#: Every constructible strategy name, in the paper's presentation order
#: (paper strategies first, then the §8 / rival extensions).
STRATEGY_NAMES = (
    "corropt",
    "fast-checker-only",
    "switch-local",
    "none",
    "drain",
    "linkguardian",
    "lg+corropt",
)

#: Per-strategy tuning knobs accepted by :func:`build_strategy`.  A knob
#: passed for a strategy that does not consume it is rejected loudly —
#: silently dropping configuration was the bug this registry fixes.
STRATEGY_KNOBS: Dict[str, FrozenSet[str]] = {
    "corropt": frozenset(),
    "fast-checker-only": frozenset(),
    "switch-local": frozenset({"sc"}),
    "none": frozenset(),
    "drain": frozenset(),
    "linkguardian": frozenset({"max_loss_rate"}),
    "lg+corropt": frozenset({"max_loss_rate"}),
}


def build_strategy(
    name: str,
    topo: Topology,
    constraint: CapacityConstraint,
    penalty_fn: PenaltyFn = linear_penalty,
    obs: Recorder = NULL_RECORDER,
    knobs: Optional[Mapping[str, float]] = None,
) -> MitigationStrategy:
    """Construct a strategy by name on a live topology.

    The single switch point shared by scenarios, the parallel worker and
    the CLI, so strategy names mean the same thing everywhere.

    Args:
        name: One of :data:`STRATEGY_NAMES`.
        topo: Live topology the strategy mutates.
        constraint: Capacity constraint for checkers/optimizer.
        penalty_fn: Penalty function; consumed by the strategies that run
            the global optimizer (corropt, drain, lg+corropt).  The
            penalty *integration* in the kernel uses its own penalty
            function, configured on the simulation.
        obs: Observability recorder.
        knobs: Optional per-strategy tuning values (see
            :data:`STRATEGY_KNOBS`).  Unknown or inapplicable knobs raise
            ``ValueError`` instead of being silently ignored.
    """
    if name not in STRATEGY_NAMES:
        raise ValueError(
            f"unknown strategy {name!r}; choose from {list(STRATEGY_NAMES)}"
        )
    knobs = dict(knobs) if knobs else {}
    allowed = STRATEGY_KNOBS[name]
    bad = sorted(set(knobs) - allowed)
    if bad:
        raise ValueError(
            f"knobs {bad} not applicable to strategy {name!r}; "
            f"applicable knobs: {sorted(allowed) or 'none'}"
        )
    if name == "corropt":
        return CorrOptStrategy(topo, constraint, penalty_fn=penalty_fn, obs=obs)
    if name == "fast-checker-only":
        return FastCheckerOnlyStrategy(topo, constraint, obs=obs)
    if name == "switch-local":
        return SwitchLocalStrategy(topo, constraint, sc=knobs.get("sc"))
    if name == "none":
        return NoMitigationStrategy(topo)
    if name == "drain":
        return DrainStrategy(topo, constraint, penalty_fn=penalty_fn, obs=obs)
    if name == "linkguardian":
        return LinkGuardianStrategy(
            topo,
            constraint,
            obs=obs,
            max_loss_rate=knobs.get("max_loss_rate", LG_MAX_LOSS_RATE),
        )
    if name == "lg+corropt":
        return LinkGuardianCorrOptStrategy(
            topo,
            constraint,
            penalty_fn=penalty_fn,
            obs=obs,
            max_loss_rate=knobs.get("max_loss_rate", LG_MAX_LOSS_RATE),
        )
    raise AssertionError("unreachable")  # pragma: no cover
