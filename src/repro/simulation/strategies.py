"""Mitigation strategies: the policies §7.1 compares.

A strategy answers two questions against a live topology:

- ``on_onset(link_id)`` — a link just started corrupting; disable it?
- ``on_activation()`` — a link just came back; which previously
  kept-active corrupting links can be disabled now?

Implementations:

- :class:`CorrOptStrategy` — fast checker on onset, global optimizer on
  activation (the paper's system);
- :class:`FastCheckerOnlyStrategy` — fast checker for both (the Figure-18
  ablation);
- :class:`SwitchLocalStrategy` — the production baseline;
- :class:`NoMitigationStrategy` — never disables (scale reference);
- :class:`DrainStrategy` — §8 extension: drains traffic instead of hard
  disable (same decisions as CorrOpt; drained links keep monitoring alive).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.constraints import CapacityConstraint
from repro.core.fast_checker import FastChecker
from repro.core.optimizer import GlobalOptimizer, OptimizerStats
from repro.core.path_counting import PathCounter
from repro.core.penalty import PenaltyFn, linear_penalty
from repro.core.switch_local import SwitchLocalChecker
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.topology.elements import LinkId
from repro.topology.graph import Topology


class MitigationStrategy:
    """Interface; see module docstring.

    Strategies that count paths expose their :class:`PathCounter` as
    ``counter`` so the simulation engine can share it (one incremental DP
    per run) instead of constructing its own.  Strategies that run the
    global optimizer accumulate its search statistics in
    ``optimizer_stats`` (None for strategies that never invoke it).
    """

    name = "abstract"
    counter: Optional[PathCounter] = None
    optimizer_stats: Optional[OptimizerStats] = None

    def on_onset(self, link_id: LinkId) -> bool:
        """Return True (and disable the link) when it can safely go down."""
        raise NotImplementedError

    def on_activation(self) -> List[LinkId]:
        """Re-evaluate after an activation; return newly disabled links."""
        raise NotImplementedError


class CorrOptStrategy(MitigationStrategy):
    """The full CorrOpt policy (§5.1): fast checker + optimizer."""

    name = "corropt"

    def __init__(
        self,
        topo: Topology,
        constraint: CapacityConstraint,
        penalty_fn: PenaltyFn = linear_penalty,
        obs: Recorder = NULL_RECORDER,
    ):
        self.topo = topo
        self.obs = obs
        self.counter = PathCounter(topo, obs=obs)
        self.fast_checker = FastChecker(
            topo, constraint, counter=self.counter, obs=obs
        )
        self.optimizer = GlobalOptimizer(
            topo, constraint, penalty_fn=penalty_fn, counter=self.counter,
            obs=obs,
        )
        self.optimizer_stats = OptimizerStats()

    def on_onset(self, link_id: LinkId) -> bool:
        return self.fast_checker.check_and_disable(link_id).allowed

    def on_activation(self) -> List[LinkId]:
        result = self.optimizer.optimize()
        self.optimizer_stats.merge(result.stats)
        return sorted(result.to_disable)


class FastCheckerOnlyStrategy(MitigationStrategy):
    """Fast checker everywhere (greedy re-sweep on activation)."""

    name = "fast-checker-only"

    def __init__(
        self,
        topo: Topology,
        constraint: CapacityConstraint,
        obs: Recorder = NULL_RECORDER,
    ):
        self.topo = topo
        self.obs = obs
        self.counter = PathCounter(topo, obs=obs)
        self.fast_checker = FastChecker(
            topo, constraint, counter=self.counter, obs=obs
        )

    def on_onset(self, link_id: LinkId) -> bool:
        return self.fast_checker.check_and_disable(link_id).allowed

    def on_activation(self) -> List[LinkId]:
        results = self.fast_checker.sweep(self.topo.corrupting_links())
        return [r.link_id for r in results if r.allowed]


class SwitchLocalStrategy(MitigationStrategy):
    """Today's practice: local uplink-count thresholds (§5.1)."""

    name = "switch-local"

    def __init__(
        self,
        topo: Topology,
        constraint: CapacityConstraint,
        sc: Optional[float] = None,
    ):
        self.topo = topo
        self.checker = SwitchLocalChecker(topo, constraint, sc=sc)

    def on_onset(self, link_id: LinkId) -> bool:
        return self.checker.check_and_disable(link_id).allowed

    def on_activation(self) -> List[LinkId]:
        return self.checker.reevaluate()


class NoMitigationStrategy(MitigationStrategy):
    """Never disable anything; corruption accumulates unchecked.

    §2 estimates that without the existing mitigation system, corruption
    losses "would be two orders of magnitude higher" — this strategy is
    the reference point for that claim.
    """

    name = "none"

    def __init__(self, topo: Topology):
        self.topo = topo

    def on_onset(self, link_id: LinkId) -> bool:
        return False

    def on_activation(self) -> List[LinkId]:
        return []


class DrainStrategy(CorrOptStrategy):
    """§8 extension: remove traffic instead of hard-disabling.

    Decision logic is identical to CorrOpt (a drained link provides no
    capacity either), but links are put in the DRAINED state so optical
    monitoring keeps flowing and repairs can be verified with test traffic
    before re-admitting production traffic.
    """

    name = "drain"

    def on_onset(self, link_id: LinkId) -> bool:
        allowed = self.fast_checker.check(link_id).allowed
        if allowed:
            self.topo.drain_link(link_id)
        return allowed

    def on_activation(self) -> List[LinkId]:
        result = self.optimizer.plan()
        self.optimizer_stats.merge(result.stats)
        for lid in result.to_disable:
            self.topo.drain_link(lid)
        return sorted(result.to_disable)


#: Every constructible strategy name, in the paper's presentation order.
STRATEGY_NAMES = (
    "corropt",
    "fast-checker-only",
    "switch-local",
    "none",
    "drain",
)


def build_strategy(
    name: str,
    topo: Topology,
    constraint: CapacityConstraint,
    penalty_fn: PenaltyFn = linear_penalty,
    obs: Recorder = NULL_RECORDER,
) -> MitigationStrategy:
    """Construct a strategy by name on a live topology.

    The single switch point shared by scenarios, the parallel worker and
    the CLI, so strategy names mean the same thing everywhere.
    """
    if name == "corropt":
        return CorrOptStrategy(topo, constraint, penalty_fn=penalty_fn, obs=obs)
    if name == "fast-checker-only":
        return FastCheckerOnlyStrategy(topo, constraint, obs=obs)
    if name == "switch-local":
        return SwitchLocalStrategy(topo, constraint)
    if name == "none":
        return NoMitigationStrategy(topo)
    if name == "drain":
        return DrainStrategy(topo, constraint, penalty_fn=penalty_fn, obs=obs)
    raise ValueError(
        f"unknown strategy {name!r}; choose from {list(STRATEGY_NAMES)}"
    )
