"""The observable condition a fault imposes on a link.

A :class:`LinkCondition` is what the optical monitor would report about one
link while a fault is active: the four power levels, the per-direction
corruption rates, and whether co-located links share the fault.  The
recommendation engine's :class:`~repro.core.recommendation.LinkObservation`
is derived from it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.recommendation import LinkObservation
from repro.optics.power import TransceiverTech
from repro.topology.elements import LinkId


@dataclass
class LinkCondition:
    """Observable state of one faulty link.

    Orientation follows Algorithm 1: side 1 receives the (primary)
    corrupting direction; side 2 transmits it.

    Attributes:
        tx1_dbm: TxPower of side 1 (transmits the reverse direction).
        rx1_dbm: RxPower at side 1 — the receiver of the corruption.
        tx2_dbm: TxPower of side 2 — feeds the corrupting direction.
        rx2_dbm: RxPower at side 2.
        fwd_rate: Corruption loss rate of the primary direction.
        rev_rate: Corruption loss rate of the reverse direction.
        co_located: Whether sibling links on the same switch / breakout
            cable corrupt simultaneously (root cause 5 signature).
    """

    tx1_dbm: float
    rx1_dbm: float
    tx2_dbm: float
    rx2_dbm: float
    fwd_rate: float
    rev_rate: float = 0.0
    co_located: bool = False

    def worst_rate(self) -> float:
        """The larger of the two directional corruption rates."""
        return max(self.fwd_rate, self.rev_rate)

    def is_bidirectional(self, threshold: float = 1e-8) -> bool:
        """Whether both directions corrupt above ``threshold`` (§3)."""
        return self.fwd_rate >= threshold and self.rev_rate >= threshold


def observation_from_condition(
    link_id: LinkId,
    condition: LinkCondition,
    tech: TransceiverTech = None,
    neighbor_corrupting: bool = None,
    recently_reseated: bool = False,
    corruption_threshold: float = 1e-8,
) -> LinkObservation:
    """Build the Algorithm-1 input from a fault condition.

    Args:
        link_id: The corrupting link.
        condition: Its observable state.
        tech: Optical technology (enables per-technology thresholds).
        neighbor_corrupting: Override for the co-location flag; defaults to
            the condition's own ``co_located``.
        recently_reseated: Repair-history flag.
        corruption_threshold: Rate above which the reverse direction counts
            as corrupting.
    """
    if neighbor_corrupting is None:
        neighbor_corrupting = condition.co_located
    return LinkObservation(
        link_id=link_id,
        corruption_rate=condition.fwd_rate,
        rx1_dbm=condition.rx1_dbm,
        rx2_dbm=condition.rx2_dbm,
        tx1_dbm=condition.tx1_dbm,
        tx2_dbm=condition.tx2_dbm,
        neighbor_corrupting=neighbor_corrupting,
        opposite_corrupting=condition.rev_rate >= corruption_threshold,
        recently_reseated=recently_reseated,
        tech=tech,
    )
