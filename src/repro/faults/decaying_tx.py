"""Root cause 3: decaying transmitter (§4).

Semiconductor lasers age; a dying laser launches less power, producing low
TxPower on the send side *and* correspondingly low RxPower on the receive
side (Table 2: ``*->* / L<-L``), often gradually.  The fix is replacing the
transceiver on the *opposite* (sending) side of the corrupting direction —
the one subtlety Algorithm 1 encodes at line 10–11.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.recommendation import RepairAction
from repro.faults.condition import LinkCondition
from repro.faults.root_causes import RootCause, repairs_that_fix
from repro.optics.power import TECH_40G_LR4, TransceiverTech
from repro.optics.transceiver import required_margin_for_rate


@dataclass
class DecayingTransmitterFault:
    """An aging laser on the sending side of the corrupting direction.

    The emitted condition is self-consistent: ``rx1 = tx2 - fiber_loss``,
    with ``tx2`` depressed exactly enough for the decoder curve to produce
    ``target_rate``.
    """

    target_rate: float
    tech: TransceiverTech = TECH_40G_LR4

    cause = RootCause.DECAYING_TRANSMITTER

    @classmethod
    def sample(
        cls,
        target_rate: float,
        rng: random.Random,
        tech: TransceiverTech = TECH_40G_LR4,
    ) -> "DecayingTransmitterFault":
        del rng  # no symptom variants for this cause
        return cls(target_rate=target_rate, tech=tech)

    def condition(self, rng: random.Random) -> LinkCondition:
        """Emit the observable link condition (low Tx2, low Rx1)."""
        tech = self.tech
        rx1 = tech.thresholds.rx_min_dbm + required_margin_for_rate(
            self.target_rate
        )
        tx2 = rx1 + tech.fiber_loss_db
        return LinkCondition(
            tx1_dbm=tech.nominal_tx_dbm,
            rx1_dbm=rx1,
            tx2_dbm=tx2,
            rx2_dbm=tech.healthy_rx_dbm() + rng.uniform(-0.5, 0.5),
            fwd_rate=self.target_rate,
            rev_rate=0.0,
        )

    def fixed_by(self, action: RepairAction) -> bool:
        return action in repairs_that_fix(self.cause)
