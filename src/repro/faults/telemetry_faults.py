"""Telemetry-path fault models: making the monitoring itself lie.

The paper's CorrOpt consumes production SNMP telemetry that is *not* clean
(§2 discards obviously-wrong counters; §8 notes monitoring stops when links
are disabled), and related systems (007, A3) treat noisy, incomplete drop
telemetry as the hard part.  This module injects those realities into the
polling path so the rest of the pipeline can be tested against them:

- **missed polls** — the SNMP query times out, nothing arrives;
- **32-bit counter wraps** — the device reports counters mod 2^32;
- **counter resets** — a switch reboot restarts counters from zero;
- **frozen counters** — a wedged line card reports stale values;
- **duplicated samples** — the collector stores a sample twice;
- **out-of-order samples** — a delayed sample arrives after a newer one;
- **garbage optical power** — NaN / absurd dBm from a dead DOM sensor.

Faults are seeded, composable, and wired into
:class:`~repro.telemetry.poller.SnmpPoller` through a *transport shim*:
the poller hands each raw :class:`~repro.telemetry.counters.
CounterSnapshot` to ``transport.deliver``, which returns the list of
snapshots that actually reach the collector (empty = missed poll, two =
duplicate or late sample).  The happy path (``transport=None``) never
touches this module.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.telemetry.counters import CounterSnapshot
from repro.telemetry.poller import OpticalReading
from repro.telemetry.sanitizer import COUNTER_32BIT_MODULUS
from repro.topology.elements import DirectionId, LinkId


@dataclass
class TelemetryFaultConfig:
    """Rates of each telemetry fault, all default-off.

    Rates are per-(direction, poll) probabilities in [0, 1];
    ``wrap_32bit`` is a device property (counters always reported modulo
    2^32), not a probabilistic event.
    """

    seed: int = 0
    missed_poll_rate: float = 0.0
    wrap_32bit: bool = False
    reset_rate: float = 0.0
    freeze_rate: float = 0.0
    freeze_duration_polls: int = 3
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    optical_garbage_rate: float = 0.0

    def __post_init__(self):
        for name in (
            "missed_poll_rate",
            "reset_rate",
            "freeze_rate",
            "duplicate_rate",
            "delay_rate",
            "optical_garbage_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} {value} outside [0, 1]")
        if self.freeze_duration_polls < 1:
            raise ValueError("freeze duration must be >= 1 poll")

    def any_enabled(self) -> bool:
        """Whether any fault can ever fire under this config."""
        return self.wrap_32bit or any(
            getattr(self, name) > 0.0
            for name in (
                "missed_poll_rate",
                "reset_rate",
                "freeze_rate",
                "duplicate_rate",
                "delay_rate",
                "optical_garbage_rate",
            )
        )


class TelemetryFault:
    """One composable fault over a stream of delivered snapshots.

    ``apply`` receives the snapshots that would be delivered this poll for
    one direction (after upstream faults) and returns what actually gets
    through.  Implementations keep per-direction state so effects like
    resets persist across polls.
    """

    def apply(
        self,
        rng: random.Random,
        direction_id: DirectionId,
        samples: List[CounterSnapshot],
    ) -> List[CounterSnapshot]:
        raise NotImplementedError


class CounterWrapFault(TelemetryFault):
    """The device exposes 32-bit counters: values arrive modulo 2^32."""

    def __init__(self, modulus: int = COUNTER_32BIT_MODULUS):
        self.modulus = modulus

    def apply(self, rng, direction_id, samples):
        m = self.modulus
        return [
            replace(s, total=s.total % m, errors=s.errors % m, drops=s.drops % m)
            for s in samples
        ]


class CounterResetFault(TelemetryFault):
    """Switch reboot: counters restart from zero and stay rebased.

    On trigger, the current cumulative values become the new zero point;
    every later reading for that direction is reported relative to it
    (until the next reboot moves the base again).
    """

    def __init__(self, rate: float):
        self.rate = rate
        self._base: Dict[DirectionId, CounterSnapshot] = {}

    def apply(self, rng, direction_id, samples):
        out = []
        for sample in samples:
            if rng.random() < self.rate:
                self._base[direction_id] = sample
            base = self._base.get(direction_id)
            if base is None:
                out.append(sample)
            else:
                out.append(
                    replace(
                        sample,
                        total=max(0, sample.total - base.total),
                        errors=max(0, sample.errors - base.errors),
                        drops=max(0, sample.drops - base.drops),
                    )
                )
        return out


class FrozenCounterFault(TelemetryFault):
    """A wedged line card repeats stale counter values for several polls."""

    def __init__(self, rate: float, duration_polls: int = 3):
        self.rate = rate
        self.duration_polls = duration_polls
        self._frozen: Dict[DirectionId, CounterSnapshot] = {}
        self._remaining: Dict[DirectionId, int] = {}

    def apply(self, rng, direction_id, samples):
        out = []
        for sample in samples:
            remaining = self._remaining.get(direction_id, 0)
            if remaining > 0:
                stale = self._frozen[direction_id]
                self._remaining[direction_id] = remaining - 1
                # Stale values, current timestamp: exactly what a wedged
                # ASIC looks like to the collector.
                out.append(replace(stale, time_s=sample.time_s))
                continue
            if rng.random() < self.rate:
                self._frozen[direction_id] = sample
                self._remaining[direction_id] = self.duration_polls - 1
            out.append(sample)
        return out


class MissedPollFault(TelemetryFault):
    """The SNMP query times out: nothing arrives this poll."""

    def __init__(self, rate: float):
        self.rate = rate

    def apply(self, rng, direction_id, samples):
        if samples and rng.random() < self.rate:
            return []
        return samples


class DuplicateSampleFault(TelemetryFault):
    """The collector stores the same sample twice."""

    def __init__(self, rate: float):
        self.rate = rate

    def apply(self, rng, direction_id, samples):
        out = []
        for sample in samples:
            out.append(sample)
            if rng.random() < self.rate:
                out.append(sample)
        return out


class DelayedSampleFault(TelemetryFault):
    """A sample is held one poll and arrives *after* a newer one.

    When triggered, the current sample is stashed and nothing is delivered;
    on the next poll the fresh sample goes first and the stale one follows
    — an out-of-order arrival at the consumer.
    """

    def __init__(self, rate: float):
        self.rate = rate
        self._held: Dict[DirectionId, CounterSnapshot] = {}

    def apply(self, rng, direction_id, samples):
        out = []
        held = self._held.pop(direction_id, None)
        for sample in samples:
            if held is None and rng.random() < self.rate:
                self._held[direction_id] = sample
                continue
            out.append(sample)
        if held is not None:
            out.append(held)  # after the newer sample: out of order
        return out


class FaultyTransport:
    """Chains seeded telemetry faults behind the poller's transport hook.

    Args:
        config: Fault rates (a convenience over passing ``faults``).
        faults: Explicit fault chain; overrides ``config`` when given.
        seed: RNG seed when ``faults`` is given without a config.

    All randomness flows from one ``random.Random``, so a run is fully
    reproducible given (seed, poll order).  A config with every rate at
    zero installs *no* faults and draws *no* random numbers: delivery is
    bit-identical to running without a transport at all.
    """

    def __init__(
        self,
        config: Optional[TelemetryFaultConfig] = None,
        faults: Optional[Sequence[TelemetryFault]] = None,
        seed: int = 0,
    ):
        self.config = config
        self._rng = random.Random(config.seed if config is not None else seed)
        if faults is not None:
            self._faults = list(faults)
        elif config is not None:
            self._faults = self._faults_from_config(config)
        else:
            self._faults = []
        self.polls_delivered = 0
        self.polls_missed = 0

    @staticmethod
    def _faults_from_config(
        config: TelemetryFaultConfig,
    ) -> List[TelemetryFault]:
        faults: List[TelemetryFault] = []
        # Device-side faults first (they shape the counter values), then
        # collection-path faults (they shape what arrives, and when).
        if config.reset_rate > 0:
            faults.append(CounterResetFault(config.reset_rate))
        if config.freeze_rate > 0:
            faults.append(
                FrozenCounterFault(
                    config.freeze_rate, config.freeze_duration_polls
                )
            )
        if config.wrap_32bit:
            faults.append(CounterWrapFault())
        if config.missed_poll_rate > 0:
            faults.append(MissedPollFault(config.missed_poll_rate))
        if config.delay_rate > 0:
            faults.append(DelayedSampleFault(config.delay_rate))
        if config.duplicate_rate > 0:
            faults.append(DuplicateSampleFault(config.duplicate_rate))
        return faults

    # ------------------------------------------------------------------ #

    def deliver(
        self, direction_id: DirectionId, snapshot: CounterSnapshot
    ) -> List[CounterSnapshot]:
        """Run one raw snapshot through the fault chain."""
        samples = [snapshot]
        for fault in self._faults:
            samples = fault.apply(self._rng, direction_id, samples)
        if samples:
            self.polls_delivered += len(samples)
        else:
            self.polls_missed += 1
        return samples

    def deliver_optical(
        self, link_id: LinkId, reading: OpticalReading
    ) -> OpticalReading:
        """Possibly corrupt an optical power reading (NaN / absurd dBm)."""
        rate = self.config.optical_garbage_rate if self.config else 0.0
        if rate <= 0 or self._rng.random() >= rate:
            return reading
        fields = ["tx_lower_dbm", "rx_lower_dbm", "tx_upper_dbm", "rx_upper_dbm"]
        victim = self._rng.choice(fields)
        garbage = self._rng.choice([float("nan"), 99.9, -127.0])
        return replace(reading, **{victim: garbage})
