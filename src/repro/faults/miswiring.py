"""A3-style cable-miswiring faults: the *map* is wrong, not the link.

A3 ("Taking the Blame Game out of Data Centers Operations with
NetPoirot"-adjacent work on wiring audits; see PAPERS.md) observes that
inventory databases drift from physical reality: a patch-panel swap or a
mislabeled port leaves monitoring attributing one cable's counters to
another link.  The data plane still forwards correctly — switches do not
consult the inventory — but every counter-driven decision about an
affected link is actually about some *other* link.

:class:`MiswiringFault` models this as a seeded set of disjoint link
pairs whose telemetry attribution is swapped.  The poller reads the FCS
signature of ``physical(link)`` when it believes it is reading ``link``;
control actions (disable, repair) still hit the link they name, because
the data plane is correct.  The observable failure mode is therefore the
A3 one: corruption on link Y surfaces as counters on link X → X is
falsely disabled while Y corrupts unnoticed — unless the active-probe
cross-check in the sensing pipeline catches the disagreement and flags
both ends ``miswired``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from repro.topology.elements import LinkId
from repro.topology.graph import Topology


@dataclass
class MiswiringFault:
    """A seeded attribution swap over disjoint link pairs.

    Attributes:
        pairs: The swapped link pairs, in sampling order.
    """

    pairs: List[Tuple[LinkId, LinkId]] = field(default_factory=list)

    def __post_init__(self):
        self._map: Dict[LinkId, LinkId] = {}
        for a, b in self.pairs:
            if a in self._map or b in self._map or a == b:
                raise ValueError(f"miswire pairs must be disjoint: {a} {b}")
            self._map[a] = b
            self._map[b] = a

    @classmethod
    def sample(
        cls, topo: Topology, num_pairs: int, seed: int = 0
    ) -> "MiswiringFault":
        """Draw ``num_pairs`` disjoint swapped pairs from the topology.

        Sampling is over the sorted link list with a dedicated
        ``random.Random(seed)``, so the fault is a pure function of
        (topology, num_pairs, seed) — byte-identical across workers.
        """
        if num_pairs < 0:
            raise ValueError("num_pairs must be non-negative")
        links = sorted(link.link_id for link in topo.links())
        if 2 * num_pairs > len(links):
            raise ValueError(
                f"{num_pairs} pairs need {2 * num_pairs} links; "
                f"topology has {len(links)}"
            )
        rng = random.Random(seed)
        chosen = rng.sample(links, 2 * num_pairs)
        pairs = [
            (chosen[2 * i], chosen[2 * i + 1]) for i in range(num_pairs)
        ]
        return cls(pairs=pairs)

    def physical(self, link_id: LinkId) -> LinkId:
        """The link whose cable is actually attached to ``link_id``'s
        monitored port (identity for unaffected links)."""
        return self._map.get(link_id, link_id)

    def affects(self, link_id: LinkId) -> bool:
        return link_id in self._map

    def affected_links(self) -> FrozenSet[LinkId]:
        return frozenset(self._map)
