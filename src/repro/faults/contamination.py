"""Root cause 1: connector contamination (§4, Figures 6–7).

Dirt on a fiber connector attenuates the signal in *one* direction (fibers
and connectors are unidirectional), so the typical signature is healthy
TxPower on both sides with low RxPower only at the receiving end of the
corruption (Table 2: ``H->H / L<-H``).

Some contamination instead causes back-reflections: RxPower stays high but
the reflections interfere with decoding.  "Transceivers do not report on
reflections, and thus we are not able to correctly identify this root cause
all the time" — the reason Algorithm 1 is not 100% accurate on this class.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.recommendation import RepairAction
from repro.faults.condition import LinkCondition
from repro.faults.root_causes import RootCause, repairs_that_fix
from repro.optics.power import TECH_40G_LR4, TransceiverTech
from repro.optics.transceiver import required_margin_for_rate

#: Fraction of contamination faults that are reflective (no RxPower drop).
REFLECTIVE_PROBABILITY = 0.2


@dataclass
class ContaminationFault:
    """A contaminated connector on one direction of a link.

    Attributes:
        target_rate: Corruption loss rate the contamination induces.
        reflective: Back-reflection variant — power levels stay high.
        tech: Optical technology of the link.
    """

    target_rate: float
    reflective: bool = False
    tech: TransceiverTech = TECH_40G_LR4

    cause = RootCause.CONNECTOR_CONTAMINATION

    @classmethod
    def sample(
        cls,
        target_rate: float,
        rng: random.Random,
        tech: TransceiverTech = TECH_40G_LR4,
    ) -> "ContaminationFault":
        """Draw a contamination fault with the paper's reflective share."""
        return cls(
            target_rate=target_rate,
            reflective=rng.random() < REFLECTIVE_PROBABILITY,
            tech=tech,
        )

    def condition(self, rng: random.Random) -> LinkCondition:
        """Emit the observable link condition."""
        tech = self.tech
        healthy_rx = tech.healthy_rx_dbm()
        tx = tech.nominal_tx_dbm
        if self.reflective:
            rx1 = healthy_rx + rng.uniform(-0.5, 0.5)
        else:
            rx1 = tech.thresholds.rx_min_dbm + required_margin_for_rate(
                self.target_rate
            )
        return LinkCondition(
            tx1_dbm=tx,
            rx1_dbm=rx1,
            tx2_dbm=tx,
            rx2_dbm=healthy_rx + rng.uniform(-0.5, 0.5),
            fwd_rate=self.target_rate,
            rev_rate=0.0,
        )

    def fixed_by(self, action: RepairAction) -> bool:
        """Whether ``action`` eliminates this fault."""
        return action in repairs_that_fix(self.cause)
