"""Root cause 5: shared-component failure (§4).

Breakout cables and switch backplanes are shared by several links; when one
fails, multiple links on the same switch corrupt *simultaneously, with
similar loss rates and good optical power on all of them* (Table 2:
``H->H / H<-H``, co-located links).  This cause is "primarily responsible
for the spatial locality of packet corruption (§3)".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.core.recommendation import RepairAction
from repro.faults.condition import LinkCondition
from repro.faults.root_causes import RootCause, repairs_that_fix
from repro.optics.power import TECH_40G_LR4, TransceiverTech

#: Typical number of links a shared component (e.g. a 4x breakout) takes out.
DEFAULT_GROUP_SIZE_RANGE = (2, 4)

#: Probability the co-location signature is visible at diagnosis time (the
#: sibling faults may surface in later polling intervals, so occasionally a
#: shared failure first looks like a lone bad transceiver).
CO_LOCATED_VISIBLE_PROBABILITY = 0.95


@dataclass
class SharedComponentFault:
    """A failing breakout cable or switch backplane region.

    Attributes:
        target_rate: Base corruption rate; member links corrupt at this rate
            up to small jitter ("the corruption loss rate on these links is
            similar").
        group_size: Number of co-located member links.
        tech: Optical technology of the links.
    """

    target_rate: float
    group_size: int = 4
    tech: TransceiverTech = TECH_40G_LR4
    _visible: bool = field(default=True, repr=False)

    cause = RootCause.SHARED_COMPONENT

    @classmethod
    def sample(
        cls,
        target_rate: float,
        rng: random.Random,
        tech: TransceiverTech = TECH_40G_LR4,
    ) -> "SharedComponentFault":
        low, high = DEFAULT_GROUP_SIZE_RANGE
        return cls(
            target_rate=target_rate,
            group_size=rng.randint(low, high),
            tech=tech,
            _visible=rng.random() < CO_LOCATED_VISIBLE_PROBABILITY,
        )

    def condition(self, rng: random.Random) -> LinkCondition:
        """Observable condition of one member link."""
        return self.group_conditions(rng)[0]

    def group_conditions(self, rng: random.Random) -> List[LinkCondition]:
        """Observable conditions of every member link.

        All members show healthy power and similar corruption rates.
        """
        tech = self.tech
        healthy_rx = tech.healthy_rx_dbm()
        conditions = []
        for _ in range(self.group_size):
            rate = self.target_rate * rng.uniform(0.8, 1.25)
            conditions.append(
                LinkCondition(
                    tx1_dbm=tech.nominal_tx_dbm,
                    rx1_dbm=healthy_rx + rng.uniform(-0.5, 0.5),
                    tx2_dbm=tech.nominal_tx_dbm,
                    rx2_dbm=healthy_rx + rng.uniform(-0.5, 0.5),
                    fwd_rate=min(rate, 0.3),
                    rev_rate=0.0,
                    co_located=self._visible,
                )
            )
        return conditions

    def fixed_by(self, action: RepairAction) -> bool:
        return action in repairs_that_fix(self.cause)
