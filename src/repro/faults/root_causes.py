"""Root causes of packet corruption and their Table-2 signatures.

§4 distills ~300 trouble tickets plus contemporaneous optical monitoring
into five root causes.  Table 2 records, for each cause, the most likely
TxPower→RxPower signature of each link direction (High/Low) and the cause's
relative contribution range (ranges because technicians bundle actions
without logging which one repaired the link).
"""

from __future__ import annotations

import enum
import random
from typing import Dict, Set, Tuple

from repro.core.recommendation import RepairAction


class RootCause(enum.Enum):
    """The five root causes of §4, in the paper's order."""

    CONNECTOR_CONTAMINATION = "connector contamination"
    DAMAGED_FIBER = "bent or damaged fiber"
    DECAYING_TRANSMITTER = "decaying transmitter"
    BAD_OR_LOOSE_TRANSCEIVER = "bad or loose transceiver"
    SHARED_COMPONENT = "shared component failure"


#: Table 2 contribution ranges (percent of corruption instances).  The low
#: end assumes a bundled action was *not* the culprit; the high end assumes
#: it was.
TABLE2_CONTRIBUTION_RANGE: Dict[RootCause, Tuple[float, float]] = {
    RootCause.CONNECTOR_CONTAMINATION: (17.0, 57.0),
    RootCause.DAMAGED_FIBER: (14.0, 48.0),
    RootCause.DECAYING_TRANSMITTER: (0.0, 1.0),
    RootCause.BAD_OR_LOOSE_TRANSCEIVER: (6.0, 45.0),
    RootCause.SHARED_COMPONENT: (10.0, 26.0),
}

#: Table 2 "most likely symptom" notation (TxPower → RxPower per direction).
TABLE2_SYMPTOM: Dict[RootCause, str] = {
    RootCause.CONNECTOR_CONTAMINATION: "H->H / L<-H",
    RootCause.DAMAGED_FIBER: "H->L / L<-H",
    RootCause.DECAYING_TRANSMITTER: "*->* / L<-L",
    RootCause.BAD_OR_LOOSE_TRANSCEIVER: "H->H / H<-H (single link)",
    RootCause.SHARED_COMPONENT: "H->H / H<-H (co-located links)",
}


def cause_mix_midpoint() -> Dict[RootCause, float]:
    """Normalized root-cause probabilities from Table 2 range midpoints.

    Midpoints: 37, 31, 0.5, 25.5, 18 (sum 112) →
    ≈ (0.330, 0.277, 0.004, 0.228, 0.161).
    """
    midpoints = {
        cause: (low + high) / 2.0
        for cause, (low, high) in TABLE2_CONTRIBUTION_RANGE.items()
    }
    total = sum(midpoints.values())
    return {cause: value / total for cause, value in midpoints.items()}


def sample_root_cause(
    rng: random.Random, mix: Dict[RootCause, float] = None
) -> RootCause:
    """Draw a root cause from ``mix`` (default: Table-2 midpoints)."""
    mix = mix or cause_mix_midpoint()
    roll = rng.random()
    cumulative = 0.0
    last = None
    for cause, probability in mix.items():
        cumulative += probability
        last = cause
        if roll < cumulative:
            return cause
    return last  # float slack


def repairs_that_fix(cause: RootCause, loose: bool = False) -> Set[RepairAction]:
    """Repair actions that eliminate corruption for a given root cause.

    §4/§5.2 semantics:

    - contamination: cleaning removes dirt; replacing the cable also ships
      clean connectors;
    - damaged fiber: only replacement helps;
    - decaying transmitter: replace the far-side (sending) transceiver;
    - loose transceiver: reseat (or a fresh, firmly seated replacement);
      a *bad* transceiver needs replacement — reseating does nothing;
    - shared component: replace the breakout cable / switch component.
    """
    if cause is RootCause.CONNECTOR_CONTAMINATION:
        return {RepairAction.CLEAN_FIBER, RepairAction.REPLACE_CABLE}
    if cause is RootCause.DAMAGED_FIBER:
        return {RepairAction.REPLACE_CABLE}
    if cause is RootCause.DECAYING_TRANSMITTER:
        return {RepairAction.REPLACE_TRANSCEIVER_REMOTE}
    if cause is RootCause.BAD_OR_LOOSE_TRANSCEIVER:
        if loose:
            return {
                RepairAction.RESEAT_TRANSCEIVER,
                RepairAction.REPLACE_TRANSCEIVER,
            }
        return {RepairAction.REPLACE_TRANSCEIVER}
    if cause is RootCause.SHARED_COMPONENT:
        return {RepairAction.REPLACE_SHARED_COMPONENT}
    raise ValueError(f"unknown root cause {cause!r}")
