"""Optical-layer fault models: the five root causes of §4 (Table 2).

Each fault model emits a :class:`~repro.faults.condition.LinkCondition`
carrying the observable symptoms (power levels, per-direction corruption)
and knows which :class:`~repro.core.recommendation.RepairAction` actually
fixes it — the ground truth against which repair policies are scored.
"""

from repro.faults.condition import LinkCondition, observation_from_condition
from repro.faults.contamination import REFLECTIVE_PROBABILITY, ContaminationFault
from repro.faults.decaying_tx import DecayingTransmitterFault
from repro.faults.fiber_damage import BIDIRECTIONAL_PROBABILITY, FiberDamageFault
from repro.faults.injector import (
    AnyFault,
    FaultEvent,
    FaultInjector,
    apply_event,
    clear_event,
    default_rate_sampler,
)
from repro.faults.root_causes import (
    TABLE2_CONTRIBUTION_RANGE,
    TABLE2_SYMPTOM,
    RootCause,
    cause_mix_midpoint,
    repairs_that_fix,
    sample_root_cause,
)
from repro.faults.miswiring import MiswiringFault
from repro.faults.shared_component import SharedComponentFault
from repro.faults.telemetry_faults import (
    CounterResetFault,
    CounterWrapFault,
    DelayedSampleFault,
    DuplicateSampleFault,
    FaultyTransport,
    FrozenCounterFault,
    MissedPollFault,
    TelemetryFault,
    TelemetryFaultConfig,
)
from repro.faults.transceiver_fault import LOOSE_PROBABILITY, TransceiverFault

__all__ = [
    "AnyFault",
    "BIDIRECTIONAL_PROBABILITY",
    "ContaminationFault",
    "CounterResetFault",
    "CounterWrapFault",
    "DecayingTransmitterFault",
    "DelayedSampleFault",
    "DuplicateSampleFault",
    "FaultEvent",
    "FaultInjector",
    "FaultyTransport",
    "FiberDamageFault",
    "FrozenCounterFault",
    "LOOSE_PROBABILITY",
    "LinkCondition",
    "MissedPollFault",
    "MiswiringFault",
    "REFLECTIVE_PROBABILITY",
    "RootCause",
    "SharedComponentFault",
    "TABLE2_CONTRIBUTION_RANGE",
    "TABLE2_SYMPTOM",
    "TelemetryFault",
    "TelemetryFaultConfig",
    "TransceiverFault",
    "apply_event",
    "cause_mix_midpoint",
    "clear_event",
    "default_rate_sampler",
    "observation_from_condition",
    "repairs_that_fix",
    "sample_root_cause",
]
