"""Root cause 4: bad or loose transceiver (§4).

A defective module, or one not firmly plugged in, corrupts packets even
though "optical TxPower and RxPower on both sides of the link are most
likely high" (Table 2: ``H->H / H<-H``, single link).  Reseating fixes a
loose module; a bad one must be replaced — which is why Algorithm 1 tries
reseat first and replacement only when the history shows a recent reseat.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.recommendation import RepairAction
from repro.faults.condition import LinkCondition
from repro.faults.root_causes import RootCause, repairs_that_fix
from repro.optics.power import TECH_40G_LR4, TransceiverTech

#: Among bad-or-loose faults, the share that are merely loose (fixable by a
#: reseat).  Calibrated so Algorithm 1's first-attempt accuracy on this
#: class is ~50%, consistent with the paper's aggregate 80%.
LOOSE_PROBABILITY = 0.5


@dataclass
class TransceiverFault:
    """A bad or loosely-seated transceiver on the receive side.

    Attributes:
        target_rate: Corruption rate of the affected direction.
        loose: True for a loose (reseat-fixable) module, False for a bad one.
        tech: Optical technology of the link.
    """

    target_rate: float
    loose: bool = False
    tech: TransceiverTech = TECH_40G_LR4

    cause = RootCause.BAD_OR_LOOSE_TRANSCEIVER

    @classmethod
    def sample(
        cls,
        target_rate: float,
        rng: random.Random,
        tech: TransceiverTech = TECH_40G_LR4,
    ) -> "TransceiverFault":
        return cls(
            target_rate=target_rate,
            loose=rng.random() < LOOSE_PROBABILITY,
            tech=tech,
        )

    def condition(self, rng: random.Random) -> LinkCondition:
        """Emit the observable condition: healthy power, corrupting link."""
        tech = self.tech
        healthy_rx = tech.healthy_rx_dbm()
        return LinkCondition(
            tx1_dbm=tech.nominal_tx_dbm,
            rx1_dbm=healthy_rx + rng.uniform(-0.5, 0.5),
            tx2_dbm=tech.nominal_tx_dbm,
            rx2_dbm=healthy_rx + rng.uniform(-0.5, 0.5),
            fwd_rate=self.target_rate,
            rev_rate=0.0,
        )

    def fixed_by(self, action: RepairAction) -> bool:
        return action in repairs_that_fix(self.cause, loose=self.loose)
