"""Fault injection over a topology.

Draws corruption faults (root cause, affected link(s), observable
conditions) as a marked Poisson process.  Shared-component faults pick
several co-located links on one switch — the mechanism behind the weak
spatial locality measured in §3 and reproduced by Figure 4's benchmark.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.faults.condition import LinkCondition
from repro.faults.contamination import ContaminationFault
from repro.faults.decaying_tx import DecayingTransmitterFault
from repro.faults.fiber_damage import FiberDamageFault
from repro.faults.root_causes import RootCause, cause_mix_midpoint
from repro.faults.shared_component import SharedComponentFault
from repro.faults.transceiver_fault import TransceiverFault
from repro.optics.power import TECH_40G_LR4, TransceiverTech
from repro.topology.elements import LinkId
from repro.topology.graph import Topology

#: Any concrete fault model.
AnyFault = Union[
    ContaminationFault,
    DecayingTransmitterFault,
    FiberDamageFault,
    SharedComponentFault,
    TransceiverFault,
]

_FAULT_CLASSES = {
    RootCause.CONNECTOR_CONTAMINATION: ContaminationFault,
    RootCause.DAMAGED_FIBER: FiberDamageFault,
    RootCause.DECAYING_TRANSMITTER: DecayingTransmitterFault,
    RootCause.BAD_OR_LOOSE_TRANSCEIVER: TransceiverFault,
    RootCause.SHARED_COMPONENT: SharedComponentFault,
}

DAY_S = 86_400.0


def default_rate_sampler(rng: random.Random) -> float:
    """Log-uniform corruption rate in [1e-8, 1e-2].

    The calibrated Table-1 sampler lives in :mod:`repro.workloads.rates`;
    this simple default keeps the injector usable standalone.
    """
    return 10.0 ** rng.uniform(-8.0, -2.0)


@dataclass(frozen=True)
class FaultEvent:
    """One corruption fault arriving in the network.

    Frozen, with ``link_ids``/``conditions`` normalised to tuples: traces
    are shared by reference between jobs (the parallel workers' scenario
    cache hands one trace to every simulation built from it), so events
    must be immutable for "same trace → same result" to hold.

    Attributes:
        time_s: Onset time (seconds since simulation start).
        fault: The ground-truth fault model instance.
        link_ids: Affected links (one, except shared-component faults).
        conditions: Per-link observable conditions, aligned with
            ``link_ids``.
    """

    time_s: float
    fault: AnyFault
    link_ids: Sequence[LinkId]
    conditions: Sequence[LinkCondition] = ()

    def __post_init__(self):
        object.__setattr__(self, "link_ids", tuple(self.link_ids))
        object.__setattr__(self, "conditions", tuple(self.conditions))

    @property
    def root_cause(self) -> RootCause:
        return self.fault.cause


class FaultInjector:
    """Seeded generator of fault events over a topology.

    Args:
        topo: Target topology.
        seed: RNG seed (all draws flow from one ``random.Random``).
        cause_mix: Root-cause probabilities; defaults to Table-2 midpoints.
        rate_sampler: Draws a corruption loss rate for each fault.
        tech: Optical technology assumed for symptom generation.
        events_per_day: Mean fault arrivals per day (Poisson).
    """

    def __init__(
        self,
        topo: Topology,
        seed: int = 0,
        cause_mix: Optional[Dict[RootCause, float]] = None,
        rate_sampler: Callable[[random.Random], float] = default_rate_sampler,
        tech: TransceiverTech = TECH_40G_LR4,
        events_per_day: float = 10.0,
    ):
        if events_per_day <= 0:
            raise ValueError("events_per_day must be positive")
        self._topo = topo
        self._rng = random.Random(seed)
        self.cause_mix = cause_mix or cause_mix_midpoint()
        self.rate_sampler = rate_sampler
        self.tech = tech
        self.events_per_day = events_per_day
        self._all_links: List[LinkId] = sorted(topo.link_ids())
        # Shared components (breakout cables, backplane regions) live on
        # the aggregation/spine tiers: breakout cables connect "switches
        # with different port speed" (§4), which is the agg-spine boundary,
        # not ToR uplinks.  Fall back to any switch for 2-stage gadgets.
        non_tor = sorted(
            sw.name
            for sw in topo.switches()
            if sw.stage >= 1 and topo.uplinks(sw.name)
        )
        self._shared_fault_switches: List[str] = non_tor or sorted(
            sw.name for sw in topo.switches() if topo.uplinks(sw.name)
        )

    # ------------------------------------------------------------------ #

    def _sample_cause(self) -> RootCause:
        roll = self._rng.random()
        cumulative = 0.0
        last = None
        for cause, probability in self.cause_mix.items():
            cumulative += probability
            last = cause
            if roll < cumulative:
                return cause
        return last

    def _pick_shared_links(self, wanted: int) -> List[LinkId]:
        """Pick co-located links for a shared-component fault.

        Prefers a breakout group when one exists on the chosen switch;
        otherwise takes adjacent uplinks of one switch.
        """
        switch = self._rng.choice(self._shared_fault_switches)
        uplinks = self._topo.uplinks(switch)
        groups = {
            self._topo.link(lid).breakout_group
            for lid in uplinks
            if self._topo.link(lid).breakout_group is not None
        }
        if groups:
            group = sorted(groups)[self._rng.randrange(len(groups))]
            members = self._topo.breakout_members(group)
            return members[:wanted] if wanted < len(members) else members
        # A backplane fault can hit any of the switch's ports, down-links
        # included — which keeps corruption's stage distribution unbiased
        # (§3) even though the shared *switch* sits above the ToR tier.
        ports = self._topo.switch_links(switch)
        if len(ports) <= wanted:
            return list(ports)
        start = self._rng.randrange(len(ports) - wanted + 1)
        return ports[start : start + wanted]

    def sample_fault(self, time_s: float = 0.0) -> FaultEvent:
        """Draw one fault event at ``time_s``."""
        rng = self._rng
        cause = self._sample_cause()
        rate = self.rate_sampler(rng)
        fault_cls = _FAULT_CLASSES[cause]
        fault = fault_cls.sample(rate, rng, tech=self.tech)

        if cause is RootCause.SHARED_COMPONENT:
            links = self._pick_shared_links(fault.group_size)
            fault.group_size = len(links)
            conditions = fault.group_conditions(rng)
        else:
            links = [rng.choice(self._all_links)]
            conditions = [fault.condition(rng)]
        return FaultEvent(
            time_s=time_s, fault=fault, link_ids=links, conditions=conditions
        )

    def generate(self, duration_days: float) -> List[FaultEvent]:
        """Generate a Poisson stream of fault events over ``duration_days``."""
        if duration_days < 0:
            raise ValueError("duration must be non-negative")
        events: List[FaultEvent] = []
        time_s = 0.0
        horizon_s = duration_days * DAY_S
        mean_gap_s = DAY_S / self.events_per_day
        while True:
            time_s += -mean_gap_s * math.log(1.0 - self._rng.random())
            if time_s >= horizon_s:
                break
            events.append(self.sample_fault(time_s))
        return events


def apply_event(topo: Topology, event: FaultEvent) -> None:
    """Write a fault event's corruption rates onto the topology.

    Sets the UP direction to the forward rate and DOWN to the reverse rate
    for every affected link (the orientation convention of
    :class:`~repro.faults.condition.LinkCondition`).
    """
    from repro.topology.elements import Direction

    for lid, condition in zip(event.link_ids, event.conditions):
        topo.set_corruption(lid, condition.fwd_rate, Direction.UP)
        if condition.rev_rate > 0:
            topo.set_corruption(lid, condition.rev_rate, Direction.DOWN)


def clear_event(topo: Topology, event: FaultEvent) -> None:
    """Remove a fault event's corruption (post-repair)."""
    for lid in event.link_ids:
        topo.clear_corruption(lid)
