"""Root cause 2: bent or damaged fiber (§4, Figures 8–9).

A bend past the fiber's tolerance leaks signal in *both* directions, so the
typical signature is low RxPower on both sides with healthy TxPower
(Table 2: ``H->L / L<-H``), and — distinctively — corruption on both
directions, "which is otherwise rare (§3)".
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.recommendation import RepairAction
from repro.faults.condition import LinkCondition
from repro.faults.root_causes import RootCause, repairs_that_fix
from repro.optics.power import TECH_40G_LR4, TransceiverTech
from repro.optics.transceiver import required_margin_for_rate

#: Probability that the damage corrupts both directions above threshold.
#: Calibrated against §3: 8.2% of corrupting links corrupt bidirectionally,
#: and fiber damage (the dominant bidirectional cause, ~28% of instances at
#: the Table-2 midpoint) accounts for nearly all of them: 0.28 * 0.3 ≈ 8%.
#: RxPower still drops on *both* sides even when only one direction's loss
#: crosses the lossy threshold, so Algorithm 1's both-sides-low rule works
#: regardless.
BIDIRECTIONAL_PROBABILITY = 0.3


@dataclass
class FiberDamageFault:
    """A bent or physically damaged fiber cable.

    Attributes:
        target_rate: Corruption rate of the (worse) primary direction.
        bidirectional: Whether the reverse direction also corrupts.
        tech: Optical technology of the link.
    """

    target_rate: float
    bidirectional: bool = True
    tech: TransceiverTech = TECH_40G_LR4

    cause = RootCause.DAMAGED_FIBER

    @classmethod
    def sample(
        cls,
        target_rate: float,
        rng: random.Random,
        tech: TransceiverTech = TECH_40G_LR4,
    ) -> "FiberDamageFault":
        return cls(
            target_rate=target_rate,
            bidirectional=rng.random() < BIDIRECTIONAL_PROBABILITY,
            tech=tech,
        )

    def condition(self, rng: random.Random) -> LinkCondition:
        """Emit the observable link condition (both sides' RxPower low)."""
        tech = self.tech
        tx = tech.nominal_tx_dbm
        margin_fwd = required_margin_for_rate(self.target_rate)
        rx1 = tech.thresholds.rx_min_dbm + margin_fwd
        if self.bidirectional:
            rev_rate = self.target_rate * rng.uniform(0.3, 1.0)
            rx2 = tech.thresholds.rx_min_dbm + required_margin_for_rate(rev_rate)
        else:
            # The leak degrades both directions' power below the alarm
            # threshold (Table 2: H->L / L<-H), but the reverse direction's
            # decode margin keeps its loss under the 1e-8 lossy threshold.
            rev_rate = 0.0
            rx2 = tech.thresholds.rx_min_dbm + rng.uniform(-0.6, -0.1)
        return LinkCondition(
            tx1_dbm=tx,
            rx1_dbm=rx1,
            tx2_dbm=tx,
            rx2_dbm=rx2,
            fwd_rate=self.target_rate,
            rev_rate=rev_rate,
        )

    def fixed_by(self, action: RepairAction) -> bool:
        return action in repairs_that_fix(self.cause)
