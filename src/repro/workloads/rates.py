"""Loss-rate distributions calibrated to Table 1.

Table 1 gives the distribution of per-link loss rates over four buckets,
normalized within links that experience each loss type:

===============  ============  ============
bucket           corruption    congestion
===============  ============  ============
[1e-8, 1e-5)     47.23%        92.44%
[1e-5, 1e-4)     18.43%         6.35%
[1e-4, 1e-3)     21.66%         0.99%
[1e-3, +)        12.67%         0.22%
===============  ============  ============

Corruption rates are drawn bucket-first, then log-uniform within the
bucket, giving synthetic traces the paper's heavy tail ("corruption
impacts fewer links but imposes heavier loss rates").
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Tuple

#: Bucket edges shared by Table 1 and our analyses.  The top bucket is
#: capped at 10% loss: beyond that a link is effectively dead.
BUCKET_EDGES: List[Tuple[float, float]] = [
    (1e-8, 1e-5),
    (1e-5, 1e-4),
    (1e-4, 1e-3),
    (1e-3, 1e-1),
]

#: Paper's Table 1, corruption column.
TABLE1_CORRUPTION_SHARES: List[float] = [0.4723, 0.1843, 0.2166, 0.1267]

#: Paper's Table 1, congestion column.
TABLE1_CONGESTION_SHARES: List[float] = [0.9244, 0.0635, 0.0099, 0.0022]

#: §3 footnote 2: links with loss below 1e-8 are deemed non-lossy.
LOSSY_THRESHOLD = 1e-8


def sample_from_buckets(
    rng: random.Random,
    shares: Sequence[float],
    edges: Sequence[Tuple[float, float]] = None,
) -> float:
    """Draw a rate: bucket by ``shares``, then log-uniform inside it."""
    edges = edges or BUCKET_EDGES
    if len(shares) != len(edges):
        raise ValueError("one share per bucket required")
    roll = rng.random() * sum(shares)
    cumulative = 0.0
    chosen = edges[-1]
    for share, edge in zip(shares, edges):
        cumulative += share
        if roll < cumulative:
            chosen = edge
            break
    low, high = chosen
    return 10.0 ** rng.uniform(math.log10(low), math.log10(high))


def sample_corruption_rate(rng: random.Random) -> float:
    """A corruption loss rate following Table 1's corruption column."""
    return sample_from_buckets(rng, TABLE1_CORRUPTION_SHARES)


def sample_congestion_rate(rng: random.Random) -> float:
    """A congestion loss rate following Table 1's congestion column."""
    return sample_from_buckets(rng, TABLE1_CONGESTION_SHARES)


def bucket_shares(
    rates: Sequence[float],
    edges: Sequence[Tuple[float, float]] = None,
) -> List[float]:
    """Fraction of ``rates`` in each bucket (Table-1 style, lossy links only).

    Rates below the first bucket's lower edge are excluded from the
    normalization, mirroring the paper's restriction to links "with
    corruption" / "with congestion".  Rates above the last bucket's upper
    edge count into the last bucket (its paper label is open-ended:
    ``[1e-3+)``).
    """
    edges = edges or BUCKET_EDGES
    counts = [0] * len(edges)
    total = 0
    for rate in rates:
        if rate < edges[0][0]:
            continue
        total += 1
        placed = False
        for i, (low, high) in enumerate(edges):
            if low <= rate < high:
                counts[i] += 1
                placed = True
                break
        if not placed:
            counts[-1] += 1
    if total == 0:
        return [0.0] * len(edges)
    return [c / total for c in counts]
