"""Synthetic corruption-trace generation.

Combines the :class:`~repro.faults.injector.FaultInjector` (root causes,
symptoms, locality) with the Table-1 rate distribution to produce traces
statistically shaped like the paper's Oct–Dec 2016 production data.

The arrival rate is expressed per 10K links per day so traces scale with
DCN size the way the paper's aggregate loss numbers do (bigger DCNs see
proportionally more corruption events).
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.faults.injector import FaultInjector
from repro.faults.root_causes import RootCause, cause_mix_midpoint
from repro.topology.graph import Topology
from repro.workloads.rates import sample_corruption_rate
from repro.workloads.trace import CorruptionTrace

#: Default corruption-onset intensity.  §2: corruption affects only a few
#: percent of links over weeks, so a 10K-link DCN sees a handful of new
#: corrupting links per day.
DEFAULT_EVENTS_PER_10K_LINKS_PER_DAY = 4.0


def generate_trace(
    topo: Topology,
    duration_days: float,
    seed: int = 0,
    events_per_10k_links_per_day: float = DEFAULT_EVENTS_PER_10K_LINKS_PER_DAY,
    cause_mix: Optional[Dict[RootCause, float]] = None,
) -> CorruptionTrace:
    """Generate a corruption trace for ``topo``.

    Args:
        topo: Target topology (used for link identities and locality).
        duration_days: Trace horizon, e.g. 90 for the paper's Oct–Dec window.
        seed: Seed controlling every random draw.
        events_per_10k_links_per_day: Fault arrival intensity.
        cause_mix: Root-cause probabilities (default Table-2 midpoints).

    Returns:
        A validated, time-ordered :class:`CorruptionTrace`.
    """
    if duration_days < 0:
        raise ValueError("duration must be non-negative")
    events_per_day = max(
        1e-9, events_per_10k_links_per_day * topo.num_links / 10_000.0
    )
    injector = FaultInjector(
        topo,
        seed=seed,
        cause_mix=cause_mix or cause_mix_midpoint(),
        rate_sampler=sample_corruption_rate,
        events_per_day=events_per_day,
    )
    trace = CorruptionTrace(
        dcn_name=topo.name,
        duration_days=duration_days,
        events=injector.generate(duration_days),
    )
    trace.validate()
    return trace


def burst_trace(
    topo: Topology,
    num_events: int,
    seed: int = 0,
    spacing_s: float = 3600.0,
) -> CorruptionTrace:
    """A dense trace of ``num_events`` evenly spaced onsets.

    Convenient for stress tests and optimizer benchmarks where we want a
    controlled number of simultaneous corrupting links rather than a
    Poisson horizon.
    """
    injector = FaultInjector(
        topo, seed=seed, rate_sampler=sample_corruption_rate
    )
    events = [
        injector.sample_fault(time_s=i * spacing_s) for i in range(num_events)
    ]
    trace = CorruptionTrace(
        dcn_name=topo.name,
        duration_days=(num_events * spacing_s) / 86_400.0,
        events=events,
    )
    trace.validate()
    return trace


def deduplicate_active(trace: CorruptionTrace) -> CorruptionTrace:
    """Drop events on links already corrupting earlier in the trace.

    Simulation engines that track link lifecycles usually want at most one
    outstanding fault per link; later onsets on a still-broken link are
    collapsed (the earlier, typically repaired-by-then fault wins).
    """
    seen = set()
    kept = []
    for event in trace.events:
        if any(lid in seen for lid in event.link_ids):
            continue
        seen.update(event.link_ids)
        kept.append(event)
    return CorruptionTrace(
        dcn_name=trace.dcn_name,
        duration_days=trace.duration_days,
        events=kept,
    )


def deterministic_rng(seed: int) -> random.Random:
    """A seeded RNG helper for callers composing their own generators."""
    return random.Random(seed)
