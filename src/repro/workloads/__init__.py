"""Workloads: DCN profiles, rate distributions, traces, study datasets.

This package is the substitute for the paper's proprietary inputs: the
Table-1 loss-rate distributions, the 15 study DCN shapes (§2), the medium/
large simulation DCNs (§7.1), corruption-onset traces, and the synthetic
monitoring dataset behind the §2–3 analyses.
"""

from repro.workloads.dcn_profiles import (
    DCNProfile,
    LARGE_DCN,
    MEDIUM_DCN,
    study_profiles,
)
from repro.workloads.flows import sample_flow_population
from repro.workloads.generator import (
    DEFAULT_EVENTS_PER_10K_LINKS_PER_DAY,
    burst_trace,
    deduplicate_active,
    generate_trace,
)
from repro.workloads.rates import (
    BUCKET_EDGES,
    LOSSY_THRESHOLD,
    TABLE1_CONGESTION_SHARES,
    TABLE1_CORRUPTION_SHARES,
    bucket_shares,
    sample_congestion_rate,
    sample_corruption_rate,
    sample_from_buckets,
)
from repro.workloads.study import (
    DcnStudy,
    LinkStudyRecord,
    StudyDataset,
    generate_dcn_study,
    generate_study,
)
from repro.workloads.trace import CorruptionTrace

__all__ = [
    "BUCKET_EDGES",
    "CorruptionTrace",
    "DCNProfile",
    "DEFAULT_EVENTS_PER_10K_LINKS_PER_DAY",
    "DcnStudy",
    "LARGE_DCN",
    "LOSSY_THRESHOLD",
    "LinkStudyRecord",
    "MEDIUM_DCN",
    "StudyDataset",
    "TABLE1_CONGESTION_SHARES",
    "TABLE1_CORRUPTION_SHARES",
    "bucket_shares",
    "burst_trace",
    "deduplicate_active",
    "generate_dcn_study",
    "generate_study",
    "generate_trace",
    "sample_congestion_rate",
    "sample_corruption_rate",
    "sample_flow_population",
    "sample_from_buckets",
    "study_profiles",
]
