"""Profiles of the paper's data centers.

§2 studies 15 production DCNs with 4K–50K links each (350K total); §7.1
simulates a medium DCN with O(15K) links and a large one with O(35K).
Profiles are parametric Clos shapes that hit those sizes, plus ``scale``
factors to produce shape-preserving miniatures for fast tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.topology.clos import build_clos
from repro.topology.graph import Topology


@dataclass(frozen=True)
class DCNProfile:
    """A parametric data center shape.

    Attributes:
        name: Profile label.
        num_pods: Pods.
        tors_per_pod: ToRs per pod.
        aggs_per_pod: Aggregation switches per pod.
        num_spines: Spine switches (divisible by ``aggs_per_pod``).
    """

    name: str
    num_pods: int
    tors_per_pod: int
    aggs_per_pod: int
    num_spines: int

    @property
    def approx_links(self) -> int:
        """Closed-form link count of the plane-wired Clos."""
        per_pod = self.aggs_per_pod * (
            self.tors_per_pod + self.num_spines // self.aggs_per_pod
        )
        return self.num_pods * per_pod

    def build(self, scale: float = 1.0) -> Topology:
        """Materialize the topology, optionally scaled down.

        ``scale`` < 1 shrinks the pod and ToR counts while *preserving
        per-switch fanout* (aggs per pod stay fixed; spine planes keep at
        least 4 switches each).  Fanout is what the disabling algorithms
        are sensitive to — a ToR with 8 uplinks and a 75% constraint can
        lose 2 of them regardless of how many pods exist — so miniatures
        built this way reproduce full-size decision behaviour.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")

        def scaled(value: int, minimum: int) -> int:
            return max(minimum, int(round(value * scale)))

        aggs = self.aggs_per_pod
        plane = max(4, scaled(self.num_spines // aggs, 4))
        return build_clos(
            num_pods=scaled(self.num_pods, 3),
            tors_per_pod=scaled(self.tors_per_pod, 4),
            aggs_per_pod=aggs,
            num_spines=plane * aggs,
            name=self.name,
        )


#: §7.1's medium DCN: O(15K) links.
MEDIUM_DCN = DCNProfile(
    name="medium", num_pods=36, tors_per_pod=32, aggs_per_pod=8, num_spines=192
)

#: §7.1's large DCN: O(35K) links.
LARGE_DCN = DCNProfile(
    name="large", num_pods=64, tors_per_pod=40, aggs_per_pod=8, num_spines=256
)


def study_profiles() -> List[DCNProfile]:
    """The 15 study DCNs of §2, sized from ~4K to ~50K links.

    Sizes interpolate between the paper's bounds; the sum lands in the
    neighbourhood of the paper's 350K monitored links.
    """
    shapes = [
        ("dcn01", 18, 26, 6, 54),
        ("dcn02", 20, 26, 6, 60),
        ("dcn03", 22, 28, 6, 66),
        ("dcn04", 24, 28, 6, 72),
        ("dcn05", 26, 30, 6, 78),
        ("dcn06", 28, 30, 8, 96),
        ("dcn07", 30, 32, 8, 112),
        ("dcn08", 34, 32, 8, 128),
        ("dcn09", 38, 34, 8, 144),
        ("dcn10", 42, 36, 8, 160),
        ("dcn11", 46, 38, 8, 192),
        ("dcn12", 52, 40, 8, 224),
        ("dcn13", 58, 42, 8, 256),
        ("dcn14", 64, 44, 8, 288),
        ("dcn15", 72, 48, 8, 320),
    ]
    return [DCNProfile(*shape) for shape in shapes]
