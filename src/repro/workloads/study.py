"""Measurement-study dataset generation (§2–3 substitute for production data).

The paper's Figures 1–5 and Table 1 are computed from seven months of SNMP
monitoring across 15 production DCNs.  We cannot have that data, so this
module synthesizes a dataset with the same *generating mechanisms*:

- corruption onsets from the fault models (Table-1 rates, stable-over-time
  series, shared-component co-location, asymmetry from unidirectional
  root causes);
- congestion from hotspot traffic through finite queues (utilization-driven,
  strongly local, mostly bidirectional);
- per-direction series at the 15-minute SNMP cadence.

Every analysis in :mod:`repro.analysis` consumes this dataset, so whether
the paper's *shapes* emerge is a genuine test of the mechanism models, not
a tautology.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.injector import FaultInjector
from repro.topology.elements import Direction, LinkId
from repro.workloads.dcn_profiles import DCNProfile, study_profiles
from repro.workloads.rates import LOSSY_THRESHOLD, sample_corruption_rate

SAMPLES_PER_DAY = 96  # 15-minute cadence


@dataclass
class LinkStudyRecord:
    """Monitoring series of one link *direction* over the study window.

    Attributes:
        dcn: DCN name.
        link_id: Canonical link id.
        direction: "up" or "down".
        kind: "corruption" or "congestion" — which loss process dominates
            this direction (healthy directions are not materialized).
        stage: Stage of the link's lower endpoint (0 = ToR–agg tier).
        loss: Loss-rate series of this direction.
        rev_loss: Loss-rate series of the opposite direction (for the
            asymmetry analysis); None when the reverse is healthy.
        utilization: Utilization series of this direction.
    """

    dcn: str
    link_id: LinkId
    direction: str
    kind: str
    stage: int
    loss: np.ndarray
    utilization: np.ndarray
    rev_loss: Optional[np.ndarray] = None

    def mean_loss(self) -> float:
        return float(np.mean(self.loss))

    def is_bidirectional(self, threshold: float = LOSSY_THRESHOLD) -> bool:
        if self.rev_loss is None:
            return False
        return (
            float(np.mean(self.loss)) >= threshold
            and float(np.mean(self.rev_loss)) >= threshold
        )


@dataclass
class DcnStudy:
    """One DCN's worth of study data.

    Attributes:
        name: DCN name.
        num_links: Total links in the (scaled) topology.
        num_switches: Total switches.
        link_endpoints: ``link_id -> (lower, upper)`` for every link, so
            locality analyses can randomize placements.
        stage_of_switch: ``switch -> stage`` for stage-location analyses.
        records: Materialized lossy directions.
        capacity_pkts_per_interval: Line rate per direction per 15-minute
            interval, for converting rates to absolute loss counts.
    """

    name: str
    num_links: int
    num_switches: int
    link_endpoints: Dict[LinkId, Tuple[str, str]]
    stage_of_switch: Dict[str, int] = field(default_factory=dict)
    records: List[LinkStudyRecord] = field(default_factory=list)
    capacity_pkts_per_interval: float = 4.5e9  # 40G, 1000B packets, 900s

    def records_of_kind(self, kind: str) -> List[LinkStudyRecord]:
        return [r for r in self.records if r.kind == kind]


@dataclass
class StudyDataset:
    """The full multi-DCN study dataset."""

    dcns: List[DcnStudy]
    days: int
    interval_s: float = 900.0

    def all_records(self, kind: Optional[str] = None) -> List[LinkStudyRecord]:
        records = [r for dcn in self.dcns for r in dcn.records]
        if kind is not None:
            records = [r for r in records if r.kind == kind]
        return records


# --------------------------------------------------------------------- #
# Generation
# --------------------------------------------------------------------- #


def _ar1_noise(
    rng: np.random.Generator, shape: Tuple[int, int], rho: float, sigma: float
) -> np.ndarray:
    """Vectorized AR(1) noise: rows = series, columns = time."""
    innovations = rng.normal(0.0, sigma, size=shape)
    noise = np.empty(shape)
    noise[:, 0] = innovations[:, 0]
    for t in range(1, shape[1]):
        noise[:, t] = rho * noise[:, t - 1] + innovations[:, t]
    return noise


def _utilization_matrix(
    rng: np.random.Generator,
    num_series: int,
    num_samples: int,
    hot: bool,
    interval_s: float,
    means: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Diurnal + AR(1) utilization series for ``num_series`` directions.

    ``means`` overrides the per-series baseline utilization (used by the
    pod-heat congestion model); otherwise cool/hot defaults apply.
    """
    times = np.arange(num_samples) * interval_s
    if means is not None:
        means = means.reshape(num_series, 1)
        amps = rng.uniform(0.05, 0.15, size=(num_series, 1))
        burst_p = rng.uniform(0.005, 0.02, size=(num_series, 1))
        burst_boost = rng.uniform(0.05, 0.12, size=(num_series, 1))
    elif hot:
        # Matches repro.congestion.traffic.sample_profile(hot=True).
        means = rng.uniform(0.5, 0.68, size=(num_series, 1))
        amps = rng.uniform(0.08, 0.16, size=(num_series, 1))
        burst_p = rng.uniform(0.01, 0.05, size=(num_series, 1))
        burst_boost = rng.uniform(0.12, 0.25, size=(num_series, 1))
    else:
        means = rng.uniform(0.15, 0.45, size=(num_series, 1))
        amps = rng.uniform(0.05, 0.2, size=(num_series, 1))
        burst_p = np.full((num_series, 1), 0.005)
        burst_boost = np.full((num_series, 1), 0.2)
    phases = rng.uniform(0, 86_400.0, size=(num_series, 1))
    diurnal = amps * np.sin(2 * np.pi * (times[None, :] - phases) / 86_400.0)
    noise = _ar1_noise(rng, (num_series, num_samples), rho=0.8, sigma=0.04)
    bursts = (
        rng.random((num_series, num_samples)) < burst_p
    ) * burst_boost
    return np.clip(means + diurnal + noise + bursts, 0.0, 1.0)


def _congestion_loss_matrix(utilization: np.ndarray) -> np.ndarray:
    """Vectorized M/M/1/K loss over a utilization matrix."""
    # congestion_loss_rate is scalar; vectorize via the closed form inline.
    rho = np.minimum(utilization, 1.0) / 0.92
    k = 120
    with np.errstate(divide="ignore", invalid="ignore"):
        num = (1.0 - rho) * rho**k
        den = 1.0 - rho ** (k + 1)
        loss = np.where(np.abs(rho - 1.0) < 1e-12, 1.0 / (k + 1), num / den)
    return np.clip(np.nan_to_num(loss), 0.0, 1.0)


def _corruption_series(
    rng: np.random.Generator,
    base_rate: float,
    num_samples: int,
    onset_probability: float = 0.3,
) -> np.ndarray:
    """A stable corruption series: constant rate with mild lognormal jitter.

    With probability ``onset_probability`` the corruption begins mid-window
    (Figure 7-style step), which is what puts mass in the upper CV range of
    Figure 2b while keeping most links' CV small.
    """
    jitter = rng.lognormal(mean=0.0, sigma=0.25, size=num_samples)
    series = base_rate * jitter
    if rng.random() < onset_probability:
        onset = rng.integers(low=num_samples // 8, high=7 * num_samples // 8)
        series[:onset] = 0.0
    return np.clip(series, 0.0, 0.3)


def generate_dcn_study(
    profile: DCNProfile,
    seed: int,
    days: int = 7,
    scale: float = 0.25,
    corrupting_fraction: float = 0.008,
    deep_buffer_spine: bool = False,
    interval_s: float = 900.0,
) -> DcnStudy:
    """Generate one DCN's study data.

    Args:
        profile: DCN shape.
        seed: RNG seed.
        days: Window length (paper's §3 uses one representative week).
        scale: Topology scale factor (1.0 = paper-size).
        corrupting_fraction: Fraction of links that develop corruption in
            the window (§3: corrupting links are 2–4% of congested ones).
        deep_buffer_spine: Mark spine switches deep-buffer (§3's stage
            effect on congestion).
        interval_s: Poll cadence.
    """
    topo = profile.build(scale=scale)
    if deep_buffer_spine:
        for name in topo.spines():
            topo.switch(name).deep_buffer = True

    py_rng = random.Random(seed)
    np_rng = np.random.default_rng(seed)
    num_samples = int(days * SAMPLES_PER_DAY * (900.0 / interval_s))

    stage_of = {sw.name: sw.stage for sw in topo.switches()}
    study = DcnStudy(
        name=profile.name,
        num_links=topo.num_links,
        num_switches=topo.num_switches,
        link_endpoints={
            lid: (topo.link(lid).lower, topo.link(lid).upper)
            for lid in topo.link_ids()
        },
        stage_of_switch=dict(stage_of),
    )

    # ---- Corruption: fault-model driven ------------------------------- #
    injector = FaultInjector(
        topo, seed=seed + 1, rate_sampler=sample_corruption_rate
    )
    target = max(6, int(topo.num_links * corrupting_fraction))
    corrupted: Dict[LinkId, Tuple[float, float]] = {}
    while len(corrupted) < target:
        event = injector.sample_fault()
        for lid, condition in zip(event.link_ids, event.conditions):
            if lid not in corrupted:
                corrupted[lid] = (condition.fwd_rate, condition.rev_rate)

    corr_links = sorted(corrupted)
    corr_util = _utilization_matrix(
        np_rng, len(corr_links), num_samples, hot=False, interval_s=interval_s
    )
    for row, lid in enumerate(corr_links):
        fwd_rate, rev_rate = corrupted[lid]
        fwd = _corruption_series(np_rng, fwd_rate, num_samples)
        rev = (
            _corruption_series(np_rng, rev_rate, num_samples)
            if rev_rate >= LOSSY_THRESHOLD
            else None
        )
        study.records.append(
            LinkStudyRecord(
                dcn=profile.name,
                link_id=lid,
                direction="up",
                kind="corruption",
                stage=stage_of[lid[0]],
                loss=fwd,
                utilization=corr_util[row],
                rev_loss=rev,
            )
        )

    # ---- Congestion: pod-heat traffic through finite queues ----------- #
    # Every pod runs warm, but heat is skewed (cube of a uniform) so a few
    # pods run near capacity.  Lossy links therefore concentrate in the
    # hottest pods — congestion's strong spatial locality (§3, Figure 4) —
    # while their count stays 25-50x the corrupting-link count.
    pods = sorted({sw.pod for sw in topo.switches() if sw.pod is not None})
    pod_heat = {pod: py_rng.random() ** 3 for pod in pods}

    hot_dirs: List = []
    dir_means: List[float] = []
    reverse_of: Dict[int, int] = {}  # reverse row -> forward row
    for link in topo.links():
        lower = topo.switch(link.lower)
        upper = topo.switch(link.upper)
        pod = lower.pod if lower.pod is not None else upper.pod
        heat = pod_heat.get(pod, 0.0)
        if upper.stage == 2:
            heat *= 0.6  # ECMP spreads load before the spine tier
        base = py_rng.uniform(0.26, 0.4) + 0.4 * heat
        # Skip directions that can never reach the loss knee (~0.78):
        # saves materializing thousands of all-zero series.
        if base + 0.12 + 0.13 + 0.12 < 0.78:
            continue
        both = py_rng.random() < 0.75
        forward = (
            Direction.UP if py_rng.random() < 0.5 else Direction.DOWN
        )
        fwd_row = len(hot_dirs)
        hot_dirs.append(link.direction_id(forward))
        dir_means.append(min(base + py_rng.uniform(-0.02, 0.02), 0.66))
        if both:
            # Bidirectional congestion tracks shared root causes (§3:
            # capacity loss hits both directions), so the reverse
            # direction's utilization follows the forward one.
            reverse_of[len(hot_dirs)] = fwd_row
            hot_dirs.append(link.direction_id(forward.reverse()))
            dir_means.append(dir_means[fwd_row])

    hot_util = _utilization_matrix(
        np_rng,
        len(hot_dirs),
        num_samples,
        hot=True,
        interval_s=interval_s,
        means=np.array(dir_means) if hot_dirs else np.zeros(0),
    )
    for rev_row, fwd_row in reverse_of.items():
        wobble = np_rng.normal(0.0, 0.015, size=num_samples)
        hot_util[rev_row] = np.clip(hot_util[fwd_row] + wobble, 0.0, 1.0)
    hot_loss = _congestion_loss_matrix(hot_util)
    # Deep-buffer egress switches lose essentially nothing.
    for row, did in enumerate(hot_dirs):
        src = did[0]
        if topo.switch(src).deep_buffer:
            hot_loss[row] = 0.0

    loss_of_dir = {did: row for row, did in enumerate(hot_dirs)}
    seen = set()
    for did in hot_dirs:
        if did in seen:
            continue
        link = topo.find_link(*did)
        lid = link.link_id
        reverse = (did[1], did[0])
        seen.add(did)
        row = loss_of_dir[did]
        if float(np.mean(hot_loss[row])) < 1e-10:
            continue  # never materialized a loss; not a congested link
        rev_loss = None
        if reverse in loss_of_dir:
            seen.add(reverse)
            rev_loss = hot_loss[loss_of_dir[reverse]]
        direction = "up" if did == (link.lower, link.upper) else "down"
        study.records.append(
            LinkStudyRecord(
                dcn=profile.name,
                link_id=lid,
                direction=direction,
                kind="congestion",
                stage=stage_of[lid[0]],
                loss=hot_loss[row],
                utilization=hot_util[row],
                rev_loss=rev_loss,
            )
        )
    return study


def generate_study(
    seed: int = 0,
    num_dcns: int = 15,
    days: int = 7,
    scale: float = 0.2,
    **kwargs,
) -> StudyDataset:
    """Generate the full multi-DCN study dataset.

    Args:
        seed: Master seed; per-DCN seeds derive from it.
        num_dcns: How many of the 15 profiles to include.
        days: Window length.
        scale: Topology scale factor (0.2 keeps benches fast; 1.0 is
            paper-sized).
        **kwargs: Forwarded to :func:`generate_dcn_study`.
    """
    profiles = study_profiles()[:num_dcns]
    dcns = []
    for index, profile in enumerate(profiles):
        dcns.append(
            generate_dcn_study(
                profile,
                seed=seed * 1000 + index,
                days=days,
                scale=scale,
                # §3: deep buffers at specific stages in some DCNs.
                deep_buffer_spine=(index % 3 == 0),
                **kwargs,
            )
        )
    return StudyDataset(dcns=dcns, days=days)
