"""Seeded flow populations for path-level sensing (the 007 angle).

007 ("007: Democratically Finding the Cause of Packet Drops", NSDI'18;
see PAPERS.md) localizes lossy links without per-link counters: every
TCP flow that suffers a retransmission votes for the links on its path,
and the tally concentrates on the culprit because good links appear on
failed and healthy paths alike.  The voting sensing pipeline
(:mod:`repro.simulation.voting`) needs a deterministic flow population
to route; this module provides it.

The population is a pure function of (topology ToR list, flows_per_tor,
seed): destination choices come from a dedicated ``random.Random`` so
the same scenario yields the same flows on every worker.
"""

from __future__ import annotations

import random
from typing import List

from repro.routing.ecmp import Flow
from repro.topology.graph import Topology

__all__ = ["sample_flow_population"]


def sample_flow_population(
    topo: Topology, flows_per_tor: int = 2, seed: int = 0
) -> List[Flow]:
    """Draw ``flows_per_tor`` flows from every ToR to a random other ToR.

    Each flow's destination is a uniformly random *different* ToR, chosen
    by index offset so the draw count per ToR is fixed (byte-identical
    populations regardless of iteration context).

    Args:
        topo: The topology whose ToRs anchor the flows.
        flows_per_tor: Flows sourced at each ToR (distinct flow labels).
        seed: Seed for the destination draws.
    """
    tors = topo.tors()
    if flows_per_tor < 0:
        raise ValueError("flows_per_tor must be non-negative")
    if len(tors) < 2:
        return []
    rng = random.Random(seed)
    flows: List[Flow] = []
    for i, src in enumerate(tors):
        for label in range(flows_per_tor):
            offset = 1 + rng.randrange(len(tors) - 1)
            dst = tors[(i + offset) % len(tors)]
            flows.append(Flow(src_tor=src, dst_tor=dst, flow_label=label))
    return flows
