"""Corruption traces: the input to the §7.1 mitigation simulations.

A trace is a time-ordered list of corruption onsets on a known topology,
each carrying its ground-truth fault (for the repair model) and observable
condition (for the recommendation engine).  Traces are generated
synthetically (:mod:`repro.workloads.generator`) because the paper's
Oct–Dec 2016 production traces are proprietary; the generator reproduces
their stated statistics (Table-1 rates, Poisson-ish arrivals, §3 weak
locality from shared components).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Union

from repro.faults.injector import FaultEvent


@dataclass
class CorruptionTrace:
    """A corruption-onset trace bound to a topology name.

    Attributes:
        dcn_name: Name of the topology the trace was generated for.
        duration_days: Trace horizon.
        events: Fault events sorted by onset time.
    """

    dcn_name: str
    duration_days: float
    events: List[FaultEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def validate(self) -> None:
        """Check time-ordering and alignment invariants."""
        previous = -1.0
        for event in self.events:
            if event.time_s < previous:
                raise ValueError("trace events out of order")
            previous = event.time_s
            if len(event.link_ids) != len(event.conditions):
                raise ValueError("event link/condition arity mismatch")

    def links_affected(self) -> int:
        """Total number of link-onsets (shared events count each member)."""
        return sum(len(event.link_ids) for event in self.events)

    def summary(self) -> dict:
        """Human-readable trace statistics."""
        from collections import Counter

        causes = Counter(event.root_cause.value for event in self.events)
        rates = [
            cond.fwd_rate for event in self.events for cond in event.conditions
        ]
        return {
            "dcn": self.dcn_name,
            "days": self.duration_days,
            "events": len(self.events),
            "link_onsets": self.links_affected(),
            "causes": dict(causes),
            "max_rate": max(rates) if rates else 0.0,
        }

    def save_summary(self, path: Union[str, Path]) -> None:
        """Persist the summary as JSON (full traces stay in memory)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.summary(), handle, indent=1)
